//! Direct callback-storm fuzzing of the router.
//!
//! [`script_fuzz`](crate::script_fuzz) drives the router through the
//! runtime, which only ever produces *causally consistent* event
//! sequences. A real broker gets no such courtesy: the network can hand it
//! the same datagram twice, deliver packets out of order, replay stale
//! copies minutes later, surface ACKs for transmissions it forgot, and
//! interleave membership churn with all of it. This module synthesizes
//! exactly those sequences — well-formed packets in hostile orders — and
//! feeds them straight into the [`RoutingStrategy`] callbacks.
//!
//! The oracle: the router must never panic and must never emit an
//! unbounded burst of actions from a single callback. (Semantic
//! correctness under causally *valid* histories is the script fuzzer's
//! job; here the input histories are deliberately impossible, so only
//! safety properties apply.)

use dcrd_core::{DcrdConfig, DcrdStrategy};
use dcrd_net::estimate::analytic_estimates;
use dcrd_net::failure::{FailureModel, LinkFailureModel};
use dcrd_net::membership::MembershipDelta;
use dcrd_net::topology::{full_mesh, DelayRange};
use dcrd_net::NodeId;
use dcrd_pubsub::packet::Packet;
use dcrd_pubsub::strategy::{Action, Actions, RoutingStrategy, RunParams, SetupContext, TimerKey};
use dcrd_pubsub::workload::{Workload, WorkloadConfig};
use dcrd_pubsub::{PacketId, TopicId};
use dcrd_sim::rng::rng_for_indexed;
use dcrd_sim::{SimDuration, SimTime};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::Rng;
use std::fmt;

/// Hard per-callback action bound: a single event making the router emit
/// this many actions is runaway amplification regardless of config.
const MAX_ACTIONS_PER_CALLBACK: usize = 10_000;

/// Pool cap so a long storm cannot grow memory without bound.
const MAX_POOL: usize = 256;

/// Tally of one callback-storm run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CallbackFuzzReport {
    /// Storm scripts executed.
    pub scripts: u64,
    /// Callbacks invoked across all scripts.
    pub events: u64,
    /// Actions the router emitted in response.
    pub actions: u64,
    /// Send actions among them.
    pub sends: u64,
    /// Deliver actions among them.
    pub delivers: u64,
    /// Largest single-callback action burst observed.
    pub max_burst: usize,
}

impl fmt::Display for CallbackFuzzReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} scripts, {} callbacks -> {} actions ({} sends, {} delivers, max burst {})",
            self.scripts, self.events, self.actions, self.sends, self.delivers, self.max_burst
        )
    }
}

/// One storm: a fresh router on a small overlay, bombarded with `events`
/// hostile-but-well-formed callbacks.
fn run_storm(seed: u64, index: u64, events: u32, report: &mut CallbackFuzzReport) {
    let mut rng: SmallRng = rng_for_indexed(seed, "callback-fuzz", index);
    let n = rng.gen_range(4..=8usize);
    let topo = full_mesh(n, DelayRange::PAPER, &mut rng);
    let workload = Workload::generate(
        &topo,
        &WorkloadConfig {
            num_topics: rng.gen_range(1..=3),
            ..WorkloadConfig::PAPER
        },
        &mut rng,
    );
    let estimates = analytic_estimates(&topo, 0.01, 0.001);
    let oracle = FailureModel::links_only(LinkFailureModel::new(0.0, seed));
    let params = RunParams {
        m: rng.gen_range(1..=2),
        ack_timeout_factor: 1.0,
        horizon: SimDuration::from_secs(600),
    };
    let config = *[
        DcrdConfig::default(),
        DcrdConfig::chaos_hardened(),
        DcrdConfig::recovery_hardened(),
        DcrdConfig::churn_hardened(),
    ]
    .choose(&mut rng)
    .expect("nonempty");
    let mut strategy = DcrdStrategy::new(config);
    strategy.setup(&SetupContext {
        topology: &topo,
        estimates: &estimates,
        workload: &workload,
        failure_oracle: &oracle,
        params,
    });

    let nodes: Vec<NodeId> = topo.nodes().collect();
    let mut now = SimTime::ZERO;
    let mut next_id: u64 = 0;
    let mut seqs = vec![0u64; workload.topics().len()];
    // Send actions the router emitted: (from, to, packet). Replayed as
    // arrivals and ACKs — in order, out of order, or more than once.
    let mut wire: Vec<(NodeId, NodeId, Packet)> = Vec::new();
    // Timers the router set: (node unknown — the runtime tracks it, we
    // replay at a random node to model a confused host).
    let mut timers: Vec<TimerKey> = Vec::new();
    let mut published: Vec<Packet> = Vec::new();
    let mut out = Actions::new();

    for _ in 0..events {
        now += SimDuration::from_micros(rng.gen_range(1..50_000));
        let acting = *nodes.choose(&mut rng).expect("nonempty");
        match rng.gen_range(0..10u32) {
            // A fresh, valid publish from its real publisher.
            0 | 1 => {
                let ti = rng.gen_range(0..workload.topics().len());
                let spec = &workload.topics()[ti];
                let destinations: Vec<NodeId> =
                    spec.subscriptions.iter().map(|s| s.subscriber).collect();
                let packet = Packet::new(
                    PacketId::new(next_id),
                    TopicId::new(ti as u32),
                    spec.publisher,
                    now,
                    destinations,
                )
                .with_seq(seqs[ti]);
                next_id += 1;
                seqs[ti] += 1;
                published.push(packet.clone());
                strategy.on_publish(spec.publisher, packet, now, &mut out);
            }
            // Deliver a wire packet to its addressee (in or out of order —
            // the pool is sampled, not popped front).
            2 | 3 => {
                if let Some(i) = (!wire.is_empty()).then(|| rng.gen_range(0..wire.len())) {
                    let (from, to, packet) = if rng.gen_bool(0.5) {
                        wire.remove(i)
                    } else {
                        // Duplicate: leave the copy behind for a replay.
                        wire[i].clone()
                    };
                    strategy.on_packet(to, from, packet, now, &mut out);
                }
            }
            // Stale replay: an old *published* packet arrives over a
            // random link long after its routing state is gone.
            4 => {
                if let Some(packet) = published.choose(&mut rng) {
                    let from = *nodes.choose(&mut rng).expect("nonempty");
                    if from != acting {
                        strategy.on_packet(acting, from, packet.clone(), now, &mut out);
                    }
                }
            }
            // ACK for a wire transmission (possibly repeated).
            5 => {
                if let Some((from, to, packet)) = wire.choose(&mut rng) {
                    strategy.on_ack(*from, *to, packet, now, &mut out);
                }
            }
            // Fabricated NACK from a random subscriber.
            6 => {
                if let Some(packet) = published.choose(&mut rng) {
                    let missing: Vec<u64> = (0..rng.gen_range(0..4u64))
                        .map(|_| rng.gen_range(0..20))
                        .collect();
                    let nack = Packet::nack(
                        packet.id,
                        packet.topic,
                        packet.publisher,
                        now,
                        acting,
                        missing,
                    );
                    let from = *nodes.choose(&mut rng).expect("nonempty");
                    strategy.on_packet(packet.publisher, from, nack, now, &mut out);
                }
            }
            // Timer firing: real key at a random node, or a fully
            // fabricated one.
            7 => {
                let key = if !timers.is_empty() && rng.gen_bool(0.7) {
                    timers[rng.gen_range(0..timers.len())]
                } else {
                    TimerKey {
                        packet: PacketId::new(rng.gen_range(0..next_id.max(1))),
                        tag: rng.gen(),
                    }
                };
                strategy.on_timer(acting, key, now, &mut out);
            }
            // Membership delta batch (joins, leaves, deaths, refutations in
            // arbitrary order, including contradictory ones).
            8 => {
                let deltas: Vec<MembershipDelta> = (0..rng.gen_range(1..4usize))
                    .map(|_| {
                        let node = *nodes.choose(&mut rng).expect("nonempty");
                        match rng.gen_range(0..4u32) {
                            0 => MembershipDelta::Join { node },
                            1 => MembershipDelta::Leave { node },
                            2 => MembershipDelta::ConfirmDead { node },
                            _ => MembershipDelta::Refute {
                                node,
                                incarnation: rng.gen_range(0..10),
                            },
                        }
                    })
                    .collect();
                strategy.on_membership(&deltas, now);
            }
            // Housekeeping tick or crash-restart wipe.
            _ => {
                if rng.gen_bool(0.5) {
                    strategy.on_tick(acting, now, &mut out);
                } else {
                    strategy.on_restart(acting, now, &mut out);
                }
            }
        }
        report.events += 1;

        let burst = out.len();
        assert!(
            burst <= MAX_ACTIONS_PER_CALLBACK,
            "router emitted {burst} actions from one callback"
        );
        report.max_burst = report.max_burst.max(burst);
        for action in out.drain() {
            report.actions += 1;
            match action {
                Action::Send { to, packet } => {
                    report.sends += 1;
                    // `acting` is a best-effort sender attribution; for
                    // replay purposes only the (from, to, packet) shape
                    // matters, and a wrong `from` is just one more kind of
                    // hostile input.
                    if wire.len() < MAX_POOL {
                        wire.push((acting, to, packet));
                    }
                }
                Action::Deliver { .. } => report.delivers += 1,
                Action::SetTimer { key, .. } => {
                    if timers.len() < MAX_POOL {
                        timers.push(key);
                    }
                }
                Action::GiveUp { .. } | Action::Suppress { .. } => {}
            }
        }
        if published.len() > MAX_POOL {
            published.drain(..MAX_POOL / 2);
        }
    }
}

/// Runs `scripts` callback storms of `events_per_script` events each.
///
/// # Panics
///
/// Panics on the first router panic or action-bound breach, naming the
/// `(seed, index)` pair that regenerates the offending storm.
#[must_use]
pub fn run_callback_fuzz(seed: u64, scripts: u64, events_per_script: u32) -> CallbackFuzzReport {
    let mut report = CallbackFuzzReport::default();
    for i in 0..scripts {
        let before = report;
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut r = before;
            run_storm(seed, i, events_per_script, &mut r);
            r
        }));
        match outcome {
            Ok(r) => report = r,
            Err(cause) => {
                let msg = cause
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| cause.downcast_ref::<&str>().copied())
                    .unwrap_or("non-string panic");
                panic!("callback-fuzz failure at seed={seed} index={i}: {msg}");
            }
        }
        report.scripts += 1;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn router_survives_1k_callback_storms() {
        let seed = 1;
        let report = run_callback_fuzz(seed, 1_000, 128);
        println!("callback-fuzz seed={seed}: {report}");
        assert_eq!(report.scripts, 1_000);
        assert_eq!(report.events, 128_000);
        // The storms must actually provoke the router, not tickle it.
        assert!(report.sends > 10_000, "storms too quiet: {report}");
        assert!(report.delivers > 1_000, "storms too quiet: {report}");
    }

    #[test]
    fn callback_fuzz_is_deterministic() {
        assert_eq!(run_callback_fuzz(3, 50, 64), run_callback_fuzz(3, 50, 64));
    }
}
