//! Masking bait: panic- and hash-looking text inside raw strings must
//! never fire — the masker replaces string contents with spaces.

pub fn raw_strings() -> usize {
    let a = r"plain raw: value.unwrap() inside";
    let b = r#"hash containers: HashMap::new() and thread_rng()"#;
    let c = r##"nested quote "# then value.expect("boom") more"##;
    a.len() + b.len() + c.len()
}
