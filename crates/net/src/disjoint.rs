//! Edge-disjoint shortest path pairs (Bhandari's algorithm).
//!
//! The paper's Multipath baseline picks its second path heuristically: "from
//! the top 5 shortest delay paths, the one with the fewest overlapping
//! links". The principled alternative is the **minimum-total-cost pair of
//! edge-disjoint paths**, computed by Bhandari's algorithm (a simplification
//! of Suurballe's):
//!
//! 1. find the shortest path `P₁`;
//! 2. for every edge of `P₁`, remove its forward arc and *negate* its
//!    reverse arc, then find a shortest path `P₂` in the modified digraph
//!    (Bellman–Ford–Moore, since arcs may now be negative);
//! 3. drop edges traversed by both (necessarily in opposite directions);
//!    the remaining edges decompose into two edge-disjoint `s → t` paths.
//!
//! Used by the `MultipathSelection::EdgeDisjoint` ablation to quantify how
//! much the paper's heuristic leaves on the table.

use std::collections::BTreeSet;

use crate::graph::{EdgeId, NodeId, Topology};
use crate::paths::{shortest_path, Metric, Path};

/// Result of a disjoint-pair computation: the primary path and, when the
/// graph admits one, an edge-disjoint secondary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DisjointPair {
    /// First path of the minimum-total-cost pair (when a pair exists) or
    /// the plain shortest path (when it does not).
    pub primary: Path,
    /// Edge-disjoint second path, or `None` when the graph has no two
    /// edge-disjoint `src → dst` paths.
    pub secondary: Option<Path>,
}

/// Computes the minimum-total-cost pair of edge-disjoint paths between
/// `src` and `dst` under `metric`, or the single shortest path when no
/// disjoint pair exists. Returns `None` when `dst` is unreachable.
///
/// # Panics
///
/// Panics if `src == dst`.
#[must_use]
pub fn edge_disjoint_pair(
    topo: &Topology,
    src: NodeId,
    dst: NodeId,
    metric: Metric,
) -> Option<DisjointPair> {
    assert!(src != dst, "disjoint pair needs distinct endpoints");
    let p1 = shortest_path(topo, src, dst, metric)?;

    // Directed view: every undirected edge is two arcs, except P1 edges,
    // whose forward arc is removed and reverse arc negated.
    let mut p1_dir: Vec<Option<(NodeId, NodeId)>> = vec![None; topo.num_edges()];
    for (i, &e) in p1.edges().iter().enumerate() {
        p1_dir[e.index()] = Some((p1.nodes()[i], p1.nodes()[i + 1]));
    }

    // Bellman-Ford-Moore over all arcs.
    let n = topo.num_nodes();
    let mut dist: Vec<Option<i64>> = vec![None; n];
    let mut prev: Vec<Option<(NodeId, EdgeId)>> = vec![None; n];
    dist[src.index()] = Some(0);
    for _ in 0..n {
        let mut changed = false;
        for e in topo.edge_ids() {
            let edge = topo.edge(e);
            let w = metric.cost(topo, e) as i64;
            let arcs: [(NodeId, NodeId, i64); 2] = match p1_dir[e.index()] {
                // P1 traversed a→b: only the negated reverse arc remains.
                Some((a, b)) => [(b, a, -w), (b, a, -w)],
                None => [(edge.a(), edge.b(), w), (edge.b(), edge.a(), w)],
            };
            for &(from, to, w) in &arcs[..if p1_dir[e.index()].is_some() { 1 } else { 2 }] {
                if let Some(df) = dist[from.index()] {
                    let nd = df + w;
                    if dist[to.index()].is_none_or(|old| nd < old) {
                        dist[to.index()] = Some(nd);
                        prev[to.index()] = Some((from, e));
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    if dist[dst.index()].is_none() {
        return Some(DisjointPair {
            primary: p1,
            secondary: None,
        });
    }

    // Reconstruct P2's edge sequence.
    let mut p2_edges: Vec<EdgeId> = Vec::new();
    {
        let mut cur = dst;
        let mut guard = 0;
        while cur != src {
            let (p, e) = prev[cur.index()].expect("reachable dst has predecessors");
            p2_edges.push(e);
            cur = p;
            guard += 1;
            assert!(guard <= 2 * n, "predecessor cycle in Bellman-Ford output");
        }
    }

    // Interlacing removal: edges on both paths cancel out.
    let p1_set: BTreeSet<EdgeId> = p1.edges().iter().copied().collect();
    let p2_set: BTreeSet<EdgeId> = p2_edges.iter().copied().collect();
    let shared: BTreeSet<EdgeId> = p1_set.intersection(&p2_set).copied().collect();
    let mut remaining: Vec<EdgeId> = p1
        .edges()
        .iter()
        .chain(p2_edges.iter())
        .copied()
        .filter(|e| !shared.contains(e))
        .collect();
    remaining.sort_unstable();
    remaining.dedup();

    // Decompose the remaining edges into two disjoint src→dst walks.
    let mut pool: Vec<EdgeId> = remaining;
    let walk = |pool: &mut Vec<EdgeId>| -> Option<Path> {
        let mut nodes = vec![src];
        let mut edges = Vec::new();
        let mut cur = src;
        while cur != dst {
            let pos = pool.iter().position(|&e| {
                let edge = topo.edge(e);
                edge.a() == cur || edge.b() == cur
            })?;
            let e = pool.swap_remove(pos);
            cur = topo.edge(e).other(cur);
            nodes.push(cur);
            edges.push(e);
        }
        let cost = edges.iter().map(|&e| metric.cost(topo, e)).sum();
        Some(Path::from_parts(nodes, edges, cost))
    };
    let first = walk(&mut pool)?;
    let second = walk(&mut pool)?;
    debug_assert!(first.overlap(&second) == 0, "pair must be edge-disjoint");

    let (primary, secondary) = if first.cost() <= second.cost() {
        (first, second)
    } else {
        (second, first)
    };
    Some(DisjointPair {
        primary,
        secondary: Some(secondary),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{full_mesh, line, random_connected, ring, DelayRange};
    use dcrd_sim::rng::rng_for;
    use dcrd_sim::SimDuration;

    #[test]
    fn ring_pair_uses_both_directions() {
        let t = ring(6, SimDuration::from_millis(10));
        let pair = edge_disjoint_pair(&t, t.node(0), t.node(2), Metric::Delay).unwrap();
        let s = pair.secondary.expect("ring has two disjoint routes");
        assert_eq!(pair.primary.hops(), 2);
        assert_eq!(s.hops(), 4);
        assert_eq!(pair.primary.overlap(&s), 0);
    }

    #[test]
    fn line_has_no_second_path() {
        let t = line(4, SimDuration::from_millis(10));
        let pair = edge_disjoint_pair(&t, t.node(0), t.node(3), Metric::Delay).unwrap();
        assert_eq!(pair.primary.hops(), 3);
        assert!(pair.secondary.is_none());
    }

    #[test]
    fn trap_topology_beats_greedy() {
        // The classic "trap": the shortest path uses an edge that blocks
        // any disjoint complement; Bhandari's negation escapes it.
        //   0 - 1 - 3 (cheap), 0 - 2 - 1 and 2 - 3 detours.
        use crate::graph::TopologyBuilder;
        let mut b = TopologyBuilder::new(4);
        let n = b.nodes();
        b.link(n[0], n[1], SimDuration::from_millis(1));
        b.link(n[1], n[3], SimDuration::from_millis(1));
        b.link(n[0], n[2], SimDuration::from_millis(2));
        b.link(n[2], n[1], SimDuration::from_millis(1));
        b.link(n[2], n[3], SimDuration::from_millis(4));
        let t = b.build();
        // Shortest path 0-1-3 (2ms). A disjoint complement must avoid edges
        // 0-1 and 1-3 → 0-2-3 (6ms). Pair exists and is disjoint.
        let pair = edge_disjoint_pair(&t, t.node(0), t.node(3), Metric::Delay).unwrap();
        let s = pair.secondary.expect("trap admits a disjoint pair");
        assert_eq!(pair.primary.overlap(&s), 0);
        let total = pair.primary.cost() + s.cost();
        // Optimal pair: {0-1-3, 0-2-3} = 2 + 6 = 8.
        assert_eq!(total, 8_000);
    }

    #[test]
    fn mesh_pairs_are_disjoint_and_optimal_first() {
        let mut rng = rng_for(1, "disjoint");
        let t = full_mesh(8, DelayRange::PAPER, &mut rng);
        for dst in 1..8 {
            let pair = edge_disjoint_pair(&t, t.node(0), t.node(dst), Metric::Delay).unwrap();
            let s = pair.secondary.expect("mesh always has disjoint pairs");
            assert_eq!(pair.primary.overlap(&s), 0);
            assert!(pair.primary.cost() <= s.cost());
        }
    }

    #[test]
    fn pair_total_cost_never_worse_than_greedy_two_paths() {
        // Bhandari's pair minimizes TOTAL cost; compare against the greedy
        // pair (shortest + shortest-avoiding-its-edges) on random graphs.
        use crate::paths::dijkstra_filtered;
        for seed in 0..10u64 {
            let mut rng = rng_for(seed, "disjoint-rand");
            let t = random_connected(12, 4, DelayRange::PAPER, &mut rng);
            let (src, dst) = (t.node(0), t.node(7));
            let Some(pair) = edge_disjoint_pair(&t, src, dst, Metric::Delay) else {
                continue;
            };
            let Some(sec) = &pair.secondary else { continue };
            let total = pair.primary.cost() + sec.cost();

            let p1 = shortest_path(&t, src, dst, Metric::Delay).unwrap();
            let banned: Vec<EdgeId> = p1.edges().to_vec();
            let greedy2 =
                dijkstra_filtered(&t, src, Metric::Delay, |e| !banned.contains(&e)).path_to(dst);
            if let Some(g2) = greedy2 {
                assert!(
                    total <= p1.cost() + g2.cost(),
                    "seed {seed}: Bhandari total {total} worse than greedy {}",
                    p1.cost() + g2.cost()
                );
            }
        }
    }

    #[test]
    fn unreachable_returns_none() {
        use crate::graph::TopologyBuilder;
        let mut b = TopologyBuilder::new(3);
        let n = b.nodes();
        b.link(n[0], n[1], SimDuration::from_millis(1));
        let t = b.build();
        assert!(edge_disjoint_pair(&t, t.node(0), t.node(2), Metric::Delay).is_none());
    }
}
