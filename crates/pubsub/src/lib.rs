//! # dcrd-pubsub — publish/subscribe messaging substrate
//!
//! The DCRD paper studies routing strategies for topic-based pub/sub over a
//! broker overlay. This crate provides everything around the routing
//! algorithm itself:
//!
//! * [`topic`] — topics and subscriptions (each subscription carries its QoS
//!   delay requirement).
//! * [`workload`] — the paper's workload generator: one publisher per topic
//!   placed on a random broker, per-topic subscription probability `Ps`
//!   drawn from `[0.2, 0.6]`, 1 packet/s publish rate (the paper's
//!   ADS-B-style air-surveillance rate), and per-subscription deadlines of
//!   `factor ×` the shortest-path delay.
//! * [`packet`] — the overlay packet: multi-destination header, the
//!   routing-path record DCRD uses for loop avoidance and upstream
//!   rerouting, and an optional source route for path-pinned strategies.
//! * [`strategy`] — the [`RoutingStrategy`]
//!   trait: event-driven callbacks (`on_publish`, `on_packet`, `on_ack`,
//!   `on_timer`) producing [`Action`]s.
//! * [`codec`] — the binary wire format packets take on a real socket.
//! * [`runtime`] — the overlay runtime binding a topology, failure/loss
//!   models and a strategy into one deterministic discrete-event run,
//!   modeling per-hop transmissions and hop-by-hop ACKs, and recording a
//!   complete [`DeliveryLog`].
//! * [`audit`] — the online invariant auditor: consumes the transmission
//!   stream during the run and flags forwarding loops, duplicate final
//!   deliveries, ACK-discipline breaches, blown transmission budgets and
//!   (opt-in) end-to-end sequence gaps.
//! * [`recovery`] — subscriber-side sequencing for crash recovery: the
//!   bounded [`SequenceTracker`] that detects gaps (feeding NACK-driven
//!   recovery) and deduplicates replayed copies.
//! * [`error`] — typed [`RuntimeError`] diagnostics the runtime records
//!   instead of panicking.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod codec;
pub mod error;
pub mod hotstate;
pub mod packet;
pub mod recovery;
pub mod runtime;
pub mod strategy;
pub mod topic;
pub mod trace;
pub mod workload;

pub use audit::{AuditConfig, AuditReport, InvariantAuditor, Violation};
pub use error::RuntimeError;
pub use packet::{Packet, PacketId, PacketKind};
pub use recovery::SequenceTracker;
pub use runtime::{AckTransit, DeliveryLog, Monitoring, OverlayRuntime, RuntimeConfig};
pub use strategy::{Action, Actions, RoutingStrategy, SetupContext};
pub use topic::{Subscription, TopicId};
pub use trace::{Trace, TraceEvent, TxOutcome};
pub use workload::{TopicSpec, Workload, WorkloadConfig};
