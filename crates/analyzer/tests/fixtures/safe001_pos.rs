// Fixture: SAFE001 must fire — panicking extractors in hot-path code.
pub fn first(xs: &[u32]) -> u32 {
    let head = xs.first().unwrap();
    let tail = xs.last().expect("non-empty");
    head + tail
}
