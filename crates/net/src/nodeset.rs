//! Compact membership sets over dense [`NodeId`]s.
//!
//! The router's hot loop asks "has this packet visited node X?" and "is
//! destination Y already covered?" thousands of times per simulated second.
//! [`NodeSet`] answers in O(1) from a u64 bitset word: overlays at the
//! paper's scale (≤64 brokers) fit in one inline word with zero heap
//! allocation; larger topologies spill into extra words on demand.

use crate::graph::NodeId;
use std::cmp::Ordering;
use std::hash::{Hash, Hasher};

const WORD_BITS: usize = 64;

/// A set of [`NodeId`]s backed by u64 bitset words.
///
/// Node indices `0..64` live in an inline word; indices `≥64` lazily
/// allocate spill words. All operations are O(1) in the number of members
/// (O(words) for [`clear`](NodeSet::clear) and equality).
#[derive(Debug, Clone, Default)]
pub struct NodeSet {
    /// Bits for node indices `0..64` (covers the paper's topologies).
    low: u64,
    /// Spill words for indices `≥64`; word `w` holds indices
    /// `64*(w+1) .. 64*(w+2)`. Empty until a large index is inserted.
    high: Vec<u64>,
}

impl NodeSet {
    /// Creates an empty set.
    #[must_use]
    pub const fn new() -> Self {
        NodeSet {
            low: 0,
            high: Vec::new(),
        }
    }

    #[inline]
    fn split(node: NodeId) -> (usize, u64) {
        let idx = node.index();
        (idx / WORD_BITS, 1u64 << (idx % WORD_BITS))
    }

    /// Inserts a node; returns `true` if it was not already present.
    #[inline]
    pub fn insert(&mut self, node: NodeId) -> bool {
        let (word, bit) = Self::split(node);
        let slot = if word == 0 {
            &mut self.low
        } else {
            if self.high.len() < word {
                self.high.resize(word, 0);
            }
            match self.high.get_mut(word - 1) {
                Some(s) => s,
                // Unreachable: the resize above guarantees the slot.
                None => return false,
            }
        };
        let fresh = *slot & bit == 0;
        *slot |= bit;
        fresh
    }

    /// Removes a node; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, node: NodeId) -> bool {
        let (word, bit) = Self::split(node);
        let slot = if word == 0 {
            &mut self.low
        } else if let Some(s) = self.high.get_mut(word - 1) {
            s
        } else {
            return false;
        };
        let present = *slot & bit != 0;
        *slot &= !bit;
        present
    }

    /// Whether the node is in the set.
    #[inline]
    #[must_use]
    pub fn contains(&self, node: NodeId) -> bool {
        let (word, bit) = Self::split(node);
        let slot = if word == 0 {
            self.low
        } else {
            self.high.get(word - 1).copied().unwrap_or(0)
        };
        slot & bit != 0
    }

    /// Empties the set, keeping any spill capacity for reuse.
    #[inline]
    pub fn clear(&mut self) {
        self.low = 0;
        for w in &mut self.high {
            *w = 0;
        }
    }

    /// Adds every member of `other` to `self`.
    pub fn union_with(&mut self, other: &NodeSet) {
        self.low |= other.low;
        if self.high.len() < other.high.len() {
            self.high.resize(other.high.len(), 0);
        }
        for (into, from) in self.high.iter_mut().zip(&other.high) {
            *into |= *from;
        }
    }

    /// Number of members.
    #[must_use]
    pub fn len(&self) -> usize {
        let spill: u32 = self.high.iter().map(|w| w.count_ones()).sum();
        self.low.count_ones() as usize + spill as usize
    }

    /// Whether the set has no members.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.low == 0 && self.high.iter().all(|&w| w == 0)
    }
}

/// Logical equality: trailing zero spill words are insignificant, so a set
/// that grew and was cleared equals a freshly built one.
impl PartialEq for NodeSet {
    fn eq(&self, other: &Self) -> bool {
        self.low == other.low && self.significant_high() == other.significant_high()
    }
}

impl Eq for NodeSet {}

impl NodeSet {
    /// Spill words with insignificant trailing zeros trimmed — the canonical
    /// form that [`PartialEq`], [`Ord`] and [`Hash`] all agree on.
    #[inline]
    fn significant_high(&self) -> &[u64] {
        let mut end = self.high.len();
        while end > 0 && self.high[end - 1] == 0 {
            end -= 1;
        }
        &self.high[..end]
    }
}

/// Total order consistent with the capacity-ignoring [`PartialEq`]: sets
/// compare by inline word, then by trimmed spill words (shorter-with-zeros
/// equals longer). The order itself is arbitrary but deterministic, so
/// `NodeSet` can key a `BTreeMap` without spill capacity leaking into
/// iteration order.
impl Ord for NodeSet {
    fn cmp(&self, other: &Self) -> Ordering {
        self.low
            .cmp(&other.low)
            .then_with(|| self.significant_high().cmp(other.significant_high()))
    }
}

impl PartialOrd for NodeSet {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Hash over the canonical (capacity-trimmed) form, so `a == b` implies
/// equal hashes even when one set grew spill words and was cleared.
impl Hash for NodeSet {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.low.hash(state);
        self.significant_high().hash(state);
    }
}

impl FromIterator<NodeId> for NodeSet {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        let mut set = NodeSet::new();
        for node in iter {
            set.insert(node);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn inline_word_membership() {
        let mut s = NodeSet::new();
        assert!(s.is_empty());
        assert!(s.insert(n(0)));
        assert!(s.insert(n(63)));
        assert!(!s.insert(n(63)), "re-insert reports already present");
        assert!(s.contains(n(0)));
        assert!(s.contains(n(63)));
        assert!(!s.contains(n(7)));
        assert_eq!(s.len(), 2);
        assert!(s.high.is_empty(), "indices < 64 must not allocate");
    }

    #[test]
    fn spill_words_cover_large_indices() {
        let mut s = NodeSet::new();
        assert!(s.insert(n(64)));
        assert!(s.insert(n(1000)));
        assert!(s.contains(n(64)));
        assert!(s.contains(n(1000)));
        assert!(!s.contains(n(999)));
        assert!(!s.contains(n(65)));
        assert_eq!(s.len(), 2);
        assert!(s.remove(n(1000)));
        assert!(!s.remove(n(1000)));
        assert!(!s.contains(n(1000)));
    }

    #[test]
    fn remove_and_clear() {
        let mut s: NodeSet = [n(1), n(70), n(130)].into_iter().collect();
        assert_eq!(s.len(), 3);
        assert!(s.remove(n(70)));
        assert!(!s.contains(n(70)));
        s.clear();
        assert!(s.is_empty());
        assert!(!s.contains(n(1)));
        assert!(!s.contains(n(130)));
    }

    #[test]
    fn equality_ignores_spill_capacity() {
        let mut grown = NodeSet::new();
        grown.insert(n(500));
        grown.remove(n(500));
        grown.insert(n(3));
        let mut fresh = NodeSet::new();
        fresh.insert(n(3));
        assert_eq!(grown, fresh);
        fresh.insert(n(80));
        assert_ne!(grown, fresh);
    }

    /// Regression (PR 10): `Ord` and `Hash` must agree with the
    /// capacity-ignoring `Eq`. A set that grew spill words and was cleared
    /// used to be `==` to a fresh set while any future `Ord`/`Hash` derive
    /// would have seen the capacity difference — keeping sets with identical
    /// membership apart in a `BTreeMap`/`HashSet`.
    #[test]
    fn ord_and_hash_ignore_spill_capacity() {
        use std::collections::hash_map::DefaultHasher;

        fn fingerprint(s: &NodeSet) -> u64 {
            let mut h = DefaultHasher::new();
            s.hash(&mut h);
            h.finish()
        }

        let mut grown = NodeSet::new();
        grown.insert(n(500)); // allocates spill words...
        grown.remove(n(500)); // ...then leaves them as zeroed capacity
        grown.insert(n(3));
        grown.insert(n(70));
        let fresh: NodeSet = [n(3), n(70)].into_iter().collect();
        assert_eq!(grown, fresh);
        assert_eq!(grown.cmp(&fresh), Ordering::Equal);
        assert_eq!(grown.partial_cmp(&fresh), Some(Ordering::Equal));
        assert_eq!(fingerprint(&grown), fingerprint(&fresh));

        // Unequal sets order deterministically regardless of which side
        // carries the spare capacity.
        let bigger: NodeSet = [n(3), n(71)].into_iter().collect();
        assert_ne!(grown, bigger);
        assert_eq!(grown.cmp(&bigger), Ordering::Less);
        assert_eq!(bigger.cmp(&grown), Ordering::Greater);

        // Membership confined to the inline word still compares against a
        // spill-capacity set without reading past the trimmed prefix.
        let inline_only: NodeSet = [n(3)].into_iter().collect();
        assert_ne!(inline_only, grown);
        assert_eq!(inline_only.cmp(&grown), Ordering::Less);
        assert_ne!(fingerprint(&inline_only), fingerprint(&grown));
    }

    #[test]
    fn union_merges_both_ranges() {
        let a: NodeSet = [n(1), n(65)].into_iter().collect();
        let mut b: NodeSet = [n(2)].into_iter().collect();
        b.union_with(&a);
        for i in [1, 2, 65] {
            assert!(b.contains(n(i)));
        }
        assert_eq!(b.len(), 3);
    }
}
