//! Coverage-guided variant of the byte fuzzer: the engine supplies the
//! datagram, the harness checks the decode oracles (no panic, canonical
//! round-trip, no over-allocation).

#![no_main]

use libfuzzer_sys::fuzz_target;

fuzz_target!(|data: &[u8]| {
    dcrd_fuzz_harness::check_decode(data);
});
