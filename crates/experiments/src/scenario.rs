//! Declarative experiment scenarios with the paper's defaults (§IV-A).

use dcrd_core::DcrdConfig;
use dcrd_pubsub::runtime::{AckTransit, Monitoring, ShedPolicy};
use dcrd_pubsub::workload::{BurstConfig, ChurnConfig, TopicPopularity};
use dcrd_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// The overlay topology family of a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TopologyKind {
    /// Every pair of brokers directly linked (Fig. 2).
    FullMesh,
    /// Connected random overlay with the given target node degree
    /// (Figs. 3–8).
    RandomDegree(usize),
    /// Geo-tiered overlay (adversarial extension): `regions` regional
    /// meshes of `per_region` brokers each with fast intra-region links,
    /// joined by a slow inter-region gateway mesh — a bimodal link-delay
    /// distribution that stresses delay-cognizant routing.
    GeoTiered {
        /// Number of regions (≥ 2).
        regions: usize,
        /// Brokers per region (≥ 2). Total nodes = `regions × per_region`;
        /// the scenario's `nodes` field is ignored for this kind.
        per_region: usize,
    },
}

/// How much simulated time / how many repetitions to spend — trades
/// precision for wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Quality {
    /// Seconds of traffic, one topology: CI smoke tests and Criterion.
    Smoke,
    /// A few minutes of traffic, 3 topologies: quick looks.
    Quick,
    /// 10 minutes of traffic, 5 topologies: the committed EXPERIMENTS.md
    /// numbers.
    Standard,
    /// The paper's full 2 hours × 10 topologies.
    Full,
}

impl Quality {
    /// Publishing duration per run.
    #[must_use]
    pub fn duration(self) -> SimDuration {
        match self {
            Quality::Smoke => SimDuration::from_secs(20),
            Quality::Quick => SimDuration::from_secs(120),
            Quality::Standard => SimDuration::from_secs(600),
            Quality::Full => SimDuration::from_secs(7200),
        }
    }

    /// Topologies (repetitions) pooled per data point.
    #[must_use]
    pub fn repetitions(self) -> u32 {
        match self {
            Quality::Smoke => 1,
            Quality::Quick => 3,
            Quality::Standard => 5,
            Quality::Full => 10,
        }
    }

    /// Parses a CLI name.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "smoke" => Some(Quality::Smoke),
            "quick" => Some(Quality::Quick),
            "standard" => Some(Quality::Standard),
            "full" => Some(Quality::Full),
            _ => None,
        }
    }
}

/// Chaos: a recurring network partition — a seeded graph cut isolating a
/// fraction of the brokers for `window_secs` out of every `period_secs`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PartitionSpec {
    /// Fraction of brokers isolated per cut (`0 < fraction < 1`; the cut
    /// membership is re-drawn every period).
    pub fraction: f64,
    /// Seconds each partition lasts.
    pub window_secs: u64,
    /// Seconds between partition onsets (must be ≥ `window_secs`).
    pub period_secs: u64,
}

/// Chaos: crash-restart brokers — fail-stop with a downtime, losing all
/// volatile in-flight router state on restart.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrashSpec {
    /// Per-broker per-epoch crash probability.
    pub rate: f64,
    /// Mean downtime in epochs (geometric, ≥ 1).
    pub mean_down_epochs: f64,
}

/// Chaos: gray links — a static subset of links degraded in exactly one
/// direction (extra loss and inflated delay that way only).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GraySpec {
    /// Fraction of links that are gray.
    pub fraction: f64,
    /// Additional loss probability in the degraded direction.
    pub extra_loss: f64,
    /// Delay multiplier in the degraded direction (≥ 1).
    pub delay_factor: f64,
}

/// Chaos: broker membership churn — brokers join late, leave gracefully
/// or crash-die permanently mid-run (one transition per churner; see
/// `dcrd_net::membership::BrokerChurnModel`). Publishers and one anchor
/// subscriber per topic are protected automatically by the runner.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BrokerChurnSpec {
    /// Probability that an unprotected broker churns during the run.
    pub rate: f64,
}

/// How the control plane disseminates membership changes to routing
/// strategies (gossip extension; the paper assumes an oracle).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum ControlPlane {
    /// Omniscient oracle: failure-detector output reaches every strategy
    /// the same epoch it is produced (the pre-gossip behavior).
    #[default]
    Oracle,
    /// Epidemic dissemination: deltas spread by eager-push rumors plus
    /// periodic anti-entropy, and reach the strategy only once every
    /// present broker has learned them. Partitions stall convergence;
    /// anti-entropy completes it after they heal.
    Gossip {
        /// Per-hop rumor loss probability (control-plane message loss,
        /// independent of the data plane's `Pl`).
        loss: f64,
    },
    /// No dissemination at all: detector output is dropped on the floor
    /// (ablation arm — routing state goes permanently stale).
    None,
}

/// One fully specified experimental setup.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Number of broker nodes (paper default: 20).
    pub nodes: usize,
    /// Topology family.
    pub topology: TopologyKind,
    /// Per-link per-epoch failure probability `Pf`.
    pub pf: f64,
    /// Per-node per-epoch fail-stop probability (the paper's §V extension;
    /// 0 disables node failures — the paper's evaluated setting).
    pub pn: f64,
    /// Mean link-outage burst length in epochs. `None` (the paper's
    /// setting) re-rolls failures independently every epoch; `Some(b)`
    /// makes outages persist ~`b` seconds at the same marginal rate `Pf`.
    pub burst_mean_epochs: Option<f64>,
    /// Subscriber churn (extension); `None` keeps the paper's permanent
    /// subscriptions.
    pub churn: Option<ChurnConfig>,
    /// Chaos: recurring network partitions (extension; `None` disables).
    #[serde(default)]
    pub partition: Option<PartitionSpec>,
    /// Chaos: crash-restart brokers (extension; `None` disables).
    #[serde(default)]
    pub crashes: Option<CrashSpec>,
    /// Chaos: gray links (extension; `None` disables).
    #[serde(default)]
    pub gray: Option<GraySpec>,
    /// Chaos: broker membership churn (extension; `None` disables).
    #[serde(default)]
    pub broker_churn: Option<BrokerChurnSpec>,
    /// How membership changes reach the strategies (gossip extension;
    /// default: the oracle the paper assumes).
    #[serde(default)]
    pub control_plane: ControlPlane,
    /// Topic popularity skew (adversarial extension; default: the paper's
    /// uniform draw).
    #[serde(default)]
    pub popularity: TopicPopularity,
    /// Flash-crowd publish burst (adversarial extension; `None` keeps the
    /// constant rate).
    #[serde(default)]
    pub burst: Option<BurstConfig>,
    /// Per-packet broker service time (overload extension; `None` keeps
    /// the paper's zero-cost processing model).
    #[serde(default)]
    pub service_time: Option<SimDuration>,
    /// Bounded per-broker service queue (overload extension; `None` keeps
    /// queues unbounded). Requires `service_time`.
    #[serde(default)]
    pub queue_limit: Option<usize>,
    /// Overload shedding policy when `queue_limit` is set.
    #[serde(default)]
    pub shed_policy: ShedPolicy,
    /// Run the online invariant auditor during every run and attach its
    /// report to the metrics.
    #[serde(default)]
    pub audit: bool,
    /// Additionally audit end-to-end completeness: every published
    /// `(message, subscriber)` pair must be delivered (requires `audit`;
    /// meaningful only for recovery-enabled strategies).
    #[serde(default)]
    pub audit_sequences: bool,
    /// Per-transmission loss probability `Pl` (paper default `10⁻⁴`).
    pub pl: f64,
    /// Transmissions per link before switching (`m`, paper default 1).
    pub m: u32,
    /// ACK timeout as a multiple of `α`.
    pub ack_timeout_factor: f64,
    /// Number of topics / publishers (paper default 10).
    pub num_topics: usize,
    /// Deadline factor × shortest-path delay (paper default 3).
    pub deadline_factor: f64,
    /// Publishing duration.
    #[serde(skip, default = "default_duration")]
    pub duration: SimDuration,
    /// Topologies pooled per point.
    pub repetitions: u32,
    /// Master seed; every repetition derives its own streams.
    pub seed: u64,
    /// DCRD configuration (ablation switches live here).
    pub dcrd: DcrdConfig,
    /// Whether strategies get analytic estimates or probe-driven ones.
    #[serde(skip, default = "default_monitoring")]
    pub monitoring: Monitoring,
    /// ACK transit model.
    #[serde(skip, default)]
    pub ack_transit: AckTransit,
}

// Referenced only through the `#[serde(default = "...")]` attributes
// above, which the vendored serde stub does not expand — keep the
// functions (real serde needs them) without tripping dead-code lints.
#[allow(dead_code)]
fn default_duration() -> SimDuration {
    Quality::Quick.duration()
}

#[allow(dead_code)]
fn default_monitoring() -> Monitoring {
    Monitoring::Analytic
}

/// Builder for [`Scenario`] starting from the paper's §IV-A defaults.
///
/// # Example
///
/// ```
/// use dcrd_experiments::scenario::ScenarioBuilder;
///
/// let s = ScenarioBuilder::new()
///     .nodes(20)
///     .degree(5)
///     .failure_probability(0.06)
///     .build();
/// assert_eq!(s.nodes, 20);
/// assert!((s.pl - 1e-4).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    scenario: Scenario,
}

impl Default for ScenarioBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ScenarioBuilder {
    /// Starts from the paper's defaults: 20-node full mesh, `Pf = 0`,
    /// `Pl = 10⁻⁴`, `m = 1`, 10 topics, deadline factor 3, quick quality.
    #[must_use]
    pub fn new() -> Self {
        ScenarioBuilder {
            scenario: Scenario {
                nodes: 20,
                topology: TopologyKind::FullMesh,
                pf: 0.0,
                pn: 0.0,
                burst_mean_epochs: None,
                churn: None,
                partition: None,
                crashes: None,
                gray: None,
                broker_churn: None,
                control_plane: ControlPlane::Oracle,
                popularity: TopicPopularity::Uniform,
                burst: None,
                service_time: None,
                queue_limit: None,
                shed_policy: ShedPolicy::LeastSlack,
                audit: false,
                audit_sequences: false,
                pl: 1e-4,
                m: 1,
                ack_timeout_factor: 1.0,
                num_topics: 10,
                deadline_factor: 3.0,
                duration: Quality::Quick.duration(),
                repetitions: Quality::Quick.repetitions(),
                seed: 0x0DC2D,
                dcrd: DcrdConfig::default(),
                monitoring: Monitoring::Analytic,
                ack_transit: AckTransit::Immediate,
            },
        }
    }

    /// Sets the number of broker nodes.
    #[must_use]
    pub fn nodes(mut self, n: usize) -> Self {
        self.scenario.nodes = n;
        self
    }

    /// Uses a full-mesh overlay.
    #[must_use]
    pub fn full_mesh(mut self) -> Self {
        self.scenario.topology = TopologyKind::FullMesh;
        self
    }

    /// Uses a random connected overlay with the given node degree.
    #[must_use]
    pub fn degree(mut self, degree: usize) -> Self {
        self.scenario.topology = TopologyKind::RandomDegree(degree);
        self
    }

    /// Sets the link failure probability `Pf`.
    #[must_use]
    pub fn failure_probability(mut self, pf: f64) -> Self {
        self.scenario.pf = pf;
        self
    }

    /// Sets the node fail-stop probability (extension; 0 = paper setting).
    #[must_use]
    pub fn node_failure_probability(mut self, pn: f64) -> Self {
        self.scenario.pn = pn;
        self
    }

    /// Makes link outages persist for bursts of `mean_epochs` epochs on
    /// average (extension; the paper re-rolls every epoch).
    #[must_use]
    pub fn bursty_failures(mut self, mean_epochs: f64) -> Self {
        self.scenario.burst_mean_epochs = Some(mean_epochs);
        self
    }

    /// Enables subscriber churn (extension; the paper's subscriptions are
    /// permanent).
    #[must_use]
    pub fn churn(mut self, churn: ChurnConfig) -> Self {
        self.scenario.churn = Some(churn);
        self
    }

    /// Schedules recurring network partitions (chaos extension).
    #[must_use]
    pub fn partition(mut self, spec: PartitionSpec) -> Self {
        self.scenario.partition = Some(spec);
        self
    }

    /// Enables crash-restart broker failures (chaos extension).
    #[must_use]
    pub fn crashes(mut self, spec: CrashSpec) -> Self {
        self.scenario.crashes = Some(spec);
        self
    }

    /// Marks a fraction of links as gray — degraded in one direction only
    /// (chaos extension).
    #[must_use]
    pub fn gray_links(mut self, spec: GraySpec) -> Self {
        self.scenario.gray = Some(spec);
        self
    }

    /// Enables broker membership churn: joins, graceful leaves and
    /// permanent deaths mid-run (chaos extension).
    #[must_use]
    pub fn broker_churn(mut self, spec: BrokerChurnSpec) -> Self {
        self.scenario.broker_churn = Some(spec);
        self
    }

    /// Selects the membership control plane (gossip extension; the
    /// default is the paper's omniscient oracle).
    #[must_use]
    pub fn control_plane(mut self, plane: ControlPlane) -> Self {
        self.scenario.control_plane = plane;
        self
    }

    /// Uses a geo-tiered overlay: `regions` regional meshes of
    /// `per_region` brokers joined through a slow gateway mesh
    /// (adversarial extension).
    #[must_use]
    pub fn geo_tiered(mut self, regions: usize, per_region: usize) -> Self {
        self.scenario.topology = TopologyKind::GeoTiered {
            regions,
            per_region,
        };
        self.scenario.nodes = regions * per_region;
        self
    }

    /// Skews topic popularity with a Zipf law and a rank-0 mega-topic
    /// (adversarial extension).
    #[must_use]
    pub fn zipf_popularity(mut self, exponent: f64, mega_ps: f64) -> Self {
        self.scenario.popularity = TopicPopularity::Zipf { exponent, mega_ps };
        self
    }

    /// Schedules a flash-crowd publish burst (adversarial extension).
    #[must_use]
    pub fn flash_crowd(mut self, burst: BurstConfig) -> Self {
        self.scenario.burst = Some(burst);
        self
    }

    /// Gives every broker a per-packet service time (overload extension).
    #[must_use]
    pub fn service_time(mut self, service: SimDuration) -> Self {
        self.scenario.service_time = Some(service);
        self
    }

    /// Bounds each broker's service queue at `limit` waiting packets,
    /// shedding by `policy` on overflow (overload extension; requires
    /// [`service_time`](Self::service_time)).
    #[must_use]
    pub fn bounded_queues(mut self, limit: usize, policy: ShedPolicy) -> Self {
        self.scenario.queue_limit = Some(limit);
        self.scenario.shed_policy = policy;
        self
    }

    /// Runs the online invariant auditor during every simulation.
    #[must_use]
    pub fn audit(mut self, on: bool) -> Self {
        self.scenario.audit = on;
        self
    }

    /// Additionally audits end-to-end completeness (implies `audit`): the
    /// report flags every published-but-undelivered `(message, subscriber)`
    /// pair as a sequence gap.
    #[must_use]
    pub fn audit_sequences(mut self, on: bool) -> Self {
        self.scenario.audit_sequences = on;
        if on {
            self.scenario.audit = true;
        }
        self
    }

    /// Sets the packet loss rate `Pl`.
    #[must_use]
    pub fn loss_rate(mut self, pl: f64) -> Self {
        self.scenario.pl = pl;
        self
    }

    /// Sets the number of transmissions per link, `m`.
    #[must_use]
    pub fn transmissions(mut self, m: u32) -> Self {
        self.scenario.m = m;
        self
    }

    /// Sets the ACK timeout factor.
    #[must_use]
    pub fn ack_timeout_factor(mut self, factor: f64) -> Self {
        self.scenario.ack_timeout_factor = factor;
        self
    }

    /// Sets the ACK transit model.
    #[must_use]
    pub fn ack_transit(mut self, transit: AckTransit) -> Self {
        self.scenario.ack_transit = transit;
        self
    }

    /// Sets the number of topics (= publishers).
    #[must_use]
    pub fn topics(mut self, n: usize) -> Self {
        self.scenario.num_topics = n;
        self
    }

    /// Sets the deadline factor (Fig. 6's x-axis).
    #[must_use]
    pub fn deadline_factor(mut self, factor: f64) -> Self {
        self.scenario.deadline_factor = factor;
        self
    }

    /// Sets the publishing duration in seconds.
    #[must_use]
    pub fn duration_secs(mut self, secs: u64) -> Self {
        self.scenario.duration = SimDuration::from_secs(secs);
        self
    }

    /// Sets the number of repetitions (topologies per point).
    #[must_use]
    pub fn repetitions(mut self, n: u32) -> Self {
        self.scenario.repetitions = n;
        self
    }

    /// Applies a quality preset (duration + repetitions).
    #[must_use]
    pub fn quality(mut self, q: Quality) -> Self {
        self.scenario.duration = q.duration();
        self.scenario.repetitions = q.repetitions();
        self
    }

    /// Sets the master seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.scenario.seed = seed;
        self
    }

    /// Sets the DCRD configuration (ablations).
    #[must_use]
    pub fn dcrd(mut self, config: DcrdConfig) -> Self {
        self.scenario.dcrd = config;
        self
    }

    /// Sets the monitoring mode.
    #[must_use]
    pub fn monitoring(mut self, monitoring: Monitoring) -> Self {
        self.scenario.monitoring = monitoring;
        self
    }

    /// Finalizes the scenario.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent combinations (degree ≥ nodes, zero topics,
    /// zero repetitions).
    #[must_use]
    pub fn build(self) -> Scenario {
        let s = self.scenario;
        assert!(s.nodes >= 2, "need at least two brokers");
        if let TopologyKind::RandomDegree(d) = s.topology {
            assert!(
                d >= 2 && d < s.nodes,
                "degree {d} invalid for {} nodes",
                s.nodes
            );
        }
        if let TopologyKind::GeoTiered {
            regions,
            per_region,
        } = s.topology
        {
            assert!(regions >= 2, "geo-tiered needs at least 2 regions");
            assert!(
                per_region >= 2,
                "geo-tiered needs at least 2 brokers per region"
            );
            assert_eq!(
                s.nodes,
                regions * per_region,
                "geo-tiered node count must equal regions × per_region"
            );
        }
        assert!(s.num_topics > 0, "need at least one topic");
        assert!(s.repetitions > 0, "need at least one repetition");
        assert!(s.m >= 1, "m must be at least 1");
        if let TopicPopularity::Zipf { exponent, mega_ps } = s.popularity {
            assert!(exponent > 0.0, "zipf exponent {exponent} must be positive");
            assert!(
                mega_ps > 0.0 && mega_ps <= 1.0,
                "mega-topic Ps {mega_ps} must be in (0, 1]"
            );
        }
        if let Some(b) = s.burst {
            assert!(b.multiplier >= 1, "burst multiplier must be at least 1");
            assert!(
                b.len > SimDuration::ZERO,
                "burst window must have positive length"
            );
            assert!(
                b.at + b.len <= s.duration,
                "burst window must end within the run"
            );
        }
        if let Some(limit) = s.queue_limit {
            assert!(limit >= 1, "queue limit must be at least 1");
            assert!(
                s.service_time.is_some(),
                "a bounded queue requires a service time"
            );
        }
        if let Some(service) = s.service_time {
            assert!(service > SimDuration::ZERO, "service time must be positive");
        }
        if let Some(p) = s.partition {
            assert!(
                p.fraction > 0.0 && p.fraction < 1.0,
                "partition fraction {} must be in (0, 1)",
                p.fraction
            );
            assert!(p.window_secs >= 1, "partition window must be at least 1 s");
            assert!(
                p.period_secs >= p.window_secs,
                "partition period {} shorter than window {}",
                p.period_secs,
                p.window_secs
            );
        }
        if let Some(c) = s.crashes {
            assert!(
                (0.0..=1.0).contains(&c.rate),
                "crash rate {} out of range",
                c.rate
            );
            assert!(c.mean_down_epochs >= 1.0, "mean downtime must be ≥ 1 epoch");
        }
        if let Some(g) = s.gray {
            assert!(
                (0.0..=1.0).contains(&g.fraction),
                "gray fraction {} out of range",
                g.fraction
            );
            assert!(
                (0.0..=1.0).contains(&g.extra_loss),
                "gray extra loss {} out of range",
                g.extra_loss
            );
            assert!(g.delay_factor >= 1.0, "gray delay factor must be ≥ 1");
        }
        if let Some(b) = s.broker_churn {
            assert!(
                (0.0..=1.0).contains(&b.rate),
                "broker churn rate {} out of range",
                b.rate
            );
            assert!(
                s.duration >= SimDuration::from_secs(6),
                "broker churn needs a run of at least 6 epochs"
            );
        }
        if let ControlPlane::Gossip { loss } = s.control_plane {
            assert!(
                (0.0..1.0).contains(&loss),
                "gossip loss {loss} must be in [0, 1)"
            );
            assert!(
                s.crashes.is_some() || s.broker_churn.is_some(),
                "a non-oracle control plane needs a failure detector \
                 (enable crashes or broker churn)"
            );
        }
        if s.control_plane == ControlPlane::None {
            assert!(
                s.crashes.is_some() || s.broker_churn.is_some(),
                "a non-oracle control plane needs a failure detector \
                 (enable crashes or broker churn)"
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let s = ScenarioBuilder::new().build();
        assert_eq!(s.nodes, 20);
        assert_eq!(s.topology, TopologyKind::FullMesh);
        assert!((s.pl - 1e-4).abs() < 1e-18);
        assert_eq!(s.m, 1);
        assert_eq!(s.num_topics, 10);
        assert!((s.deadline_factor - 3.0).abs() < f64::EPSILON);
    }

    #[test]
    fn builder_setters() {
        let s = ScenarioBuilder::new()
            .nodes(40)
            .degree(8)
            .failure_probability(0.06)
            .loss_rate(0.01)
            .transmissions(2)
            .topics(5)
            .deadline_factor(1.5)
            .duration_secs(30)
            .repetitions(2)
            .seed(99)
            .build();
        assert_eq!(s.nodes, 40);
        assert_eq!(s.topology, TopologyKind::RandomDegree(8));
        assert!((s.pf - 0.06).abs() < f64::EPSILON);
        assert!((s.pl - 0.01).abs() < f64::EPSILON);
        assert_eq!(s.m, 2);
        assert_eq!(s.num_topics, 5);
        assert!((s.deadline_factor - 1.5).abs() < f64::EPSILON);
        assert_eq!(s.duration, SimDuration::from_secs(30));
        assert_eq!(s.repetitions, 2);
        assert_eq!(s.seed, 99);
    }

    #[test]
    fn quality_presets() {
        assert_eq!(Quality::Full.duration(), SimDuration::from_secs(7200));
        assert_eq!(Quality::Full.repetitions(), 10);
        assert!(Quality::Smoke.duration() < Quality::Quick.duration());
        assert_eq!(Quality::parse("standard"), Some(Quality::Standard));
        assert_eq!(Quality::parse("nope"), None);
        let s = ScenarioBuilder::new().quality(Quality::Smoke).build();
        assert_eq!(s.repetitions, 1);
    }

    #[test]
    fn chaos_builders_set_specs() {
        let s = ScenarioBuilder::new()
            .partition(PartitionSpec {
                fraction: 0.3,
                window_secs: 30,
                period_secs: 60,
            })
            .crashes(CrashSpec {
                rate: 0.01,
                mean_down_epochs: 3.0,
            })
            .gray_links(GraySpec {
                fraction: 0.2,
                extra_loss: 0.3,
                delay_factor: 2.0,
            })
            .audit(true)
            .build();
        assert_eq!(s.partition.unwrap().window_secs, 30);
        assert!((s.crashes.unwrap().rate - 0.01).abs() < f64::EPSILON);
        assert!((s.gray.unwrap().delay_factor - 2.0).abs() < f64::EPSILON);
        assert!(s.audit);
        let plain = ScenarioBuilder::new().build();
        assert!(plain.partition.is_none() && plain.crashes.is_none() && plain.gray.is_none());
        assert!(!plain.audit);
    }

    #[test]
    fn broker_churn_builder_sets_spec() {
        let s = ScenarioBuilder::new()
            .broker_churn(BrokerChurnSpec { rate: 0.25 })
            .build();
        assert!((s.broker_churn.unwrap().rate - 0.25).abs() < f64::EPSILON);
        assert!(ScenarioBuilder::new().build().broker_churn.is_none());
    }

    #[test]
    fn control_plane_builder_sets_plane() {
        let s = ScenarioBuilder::new()
            .broker_churn(BrokerChurnSpec { rate: 0.3 })
            .control_plane(ControlPlane::Gossip { loss: 0.1 })
            .build();
        assert_eq!(s.control_plane, ControlPlane::Gossip { loss: 0.1 });
        assert_eq!(
            ScenarioBuilder::new().build().control_plane,
            ControlPlane::Oracle
        );
    }

    #[test]
    #[should_panic(expected = "gossip loss")]
    fn rejects_gossip_loss_of_one() {
        let _ = ScenarioBuilder::new()
            .broker_churn(BrokerChurnSpec { rate: 0.3 })
            .control_plane(ControlPlane::Gossip { loss: 1.0 })
            .build();
    }

    #[test]
    #[should_panic(expected = "failure detector")]
    fn rejects_non_oracle_control_plane_without_detector() {
        let _ = ScenarioBuilder::new()
            .control_plane(ControlPlane::None)
            .build();
    }

    #[test]
    #[should_panic(expected = "churn rate")]
    fn rejects_broker_churn_rate_above_one() {
        let _ = ScenarioBuilder::new()
            .broker_churn(BrokerChurnSpec { rate: 1.5 })
            .build();
    }

    #[test]
    #[should_panic(expected = "6 epochs")]
    fn rejects_broker_churn_on_too_short_runs() {
        let _ = ScenarioBuilder::new()
            .broker_churn(BrokerChurnSpec { rate: 0.2 })
            .duration_secs(3)
            .build();
    }

    #[test]
    fn adversarial_builders_set_knobs() {
        let s = ScenarioBuilder::new()
            .geo_tiered(3, 5)
            .zipf_popularity(1.2, 0.9)
            .flash_crowd(BurstConfig {
                at: SimDuration::from_secs(10),
                len: SimDuration::from_secs(5),
                multiplier: 4,
            })
            .service_time(SimDuration::from_millis(2))
            .bounded_queues(32, ShedPolicy::LeastSlack)
            .build();
        assert_eq!(
            s.topology,
            TopologyKind::GeoTiered {
                regions: 3,
                per_region: 5
            }
        );
        assert_eq!(s.nodes, 15, "geo_tiered derives the node count");
        assert_eq!(
            s.popularity,
            TopicPopularity::Zipf {
                exponent: 1.2,
                mega_ps: 0.9
            }
        );
        assert_eq!(s.burst.unwrap().multiplier, 4);
        assert_eq!(s.service_time, Some(SimDuration::from_millis(2)));
        assert_eq!(s.queue_limit, Some(32));
        assert_eq!(s.shed_policy, ShedPolicy::LeastSlack);

        let plain = ScenarioBuilder::new().build();
        assert_eq!(plain.popularity, TopicPopularity::Uniform);
        assert!(plain.burst.is_none());
        assert!(plain.service_time.is_none() && plain.queue_limit.is_none());
    }

    #[test]
    #[should_panic(expected = "regions × per_region")]
    fn rejects_geo_tiered_node_count_mismatch() {
        let _ = ScenarioBuilder::new().geo_tiered(3, 5).nodes(20).build();
    }

    #[test]
    #[should_panic(expected = "zipf exponent")]
    fn rejects_non_positive_zipf_exponent() {
        let _ = ScenarioBuilder::new().zipf_popularity(0.0, 0.5).build();
    }

    #[test]
    #[should_panic(expected = "must end within the run")]
    fn rejects_burst_overrunning_the_horizon() {
        let _ = ScenarioBuilder::new()
            .duration_secs(10)
            .flash_crowd(BurstConfig {
                at: SimDuration::from_secs(8),
                len: SimDuration::from_secs(5),
                multiplier: 2,
            })
            .build();
    }

    #[test]
    #[should_panic(expected = "requires a service time")]
    fn rejects_bounded_queue_without_service_time() {
        let _ = ScenarioBuilder::new()
            .bounded_queues(8, ShedPolicy::TailDrop)
            .build();
    }

    #[test]
    #[should_panic(expected = "period")]
    fn rejects_partition_window_longer_than_period() {
        let _ = ScenarioBuilder::new()
            .partition(PartitionSpec {
                fraction: 0.3,
                window_secs: 60,
                period_secs: 30,
            })
            .build();
    }

    #[test]
    #[should_panic(expected = "degree")]
    fn rejects_bad_degree() {
        let _ = ScenarioBuilder::new().nodes(5).degree(5).build();
    }

    #[test]
    #[should_panic(expected = "at least one repetition")]
    fn rejects_zero_reps() {
        let _ = ScenarioBuilder::new().repetitions(0).build();
    }
}
