//! Chaos acceptance: the chaos-hardened DCRD router (adaptive retransmission
//! backoff + circuit breaker) strictly beats the paper's fixed-timeout
//! router under a long network partition, and the online invariant auditor
//! stays clean across the whole chaos sweep.

use dcrd::core::{DcrdConfig, DcrdStrategy};
use dcrd::experiments::chaos::chaos_report;
use dcrd::experiments::runner::{
    build_chaos, build_topology, build_workload, run_scenario, StrategyKind,
};
use dcrd::experiments::scenario::{PartitionSpec, Quality, Scenario, ScenarioBuilder};
use dcrd::net::failure::{FailureModel, LinkFailureModel};
use dcrd::net::loss::LossModel;
use dcrd::pubsub::runtime::{OverlayRuntime, RuntimeConfig};
use dcrd::pubsub::AuditConfig;
use dcrd::sim::SimDuration;

/// The acceptance setup: 20 brokers, a 30 s partition isolating
/// 30 % of them out of every minute. Both routers run on the same seed —
/// identical topology, workload and partition schedule.
fn partition_scenario(dcrd: DcrdConfig) -> Scenario {
    ScenarioBuilder::new()
        .nodes(20)
        .degree(5)
        .failure_probability(0.0)
        .partition(PartitionSpec {
            fraction: 0.3,
            window_secs: 30,
            period_secs: 60,
        })
        .audit(true)
        .duration_secs(120)
        .repetitions(2)
        .seed(0xC7A05)
        .dcrd(dcrd)
        .build()
}

#[test]
fn adaptive_backoff_beats_fixed_timeouts_under_partition() {
    let hardened = run_scenario(
        &partition_scenario(DcrdConfig::chaos_hardened()),
        StrategyKind::Dcrd,
    );
    let fixed = run_scenario(
        &partition_scenario(DcrdConfig::default()),
        StrategyKind::Dcrd,
    );
    assert_eq!(
        hardened.audit_violations(),
        0,
        "hardened router broke an invariant"
    );
    assert_eq!(
        fixed.audit_violations(),
        0,
        "fixed router broke an invariant"
    );
    assert!(
        hardened.qos_delivery_ratio() > fixed.qos_delivery_ratio(),
        "adaptive backoff must strictly beat fixed timeouts under a 30 s \
         partition: hardened {} vs fixed {}",
        hardened.qos_delivery_ratio(),
        fixed.qos_delivery_ratio()
    );
}

#[test]
fn chaos_sweep_reports_zero_violations() {
    let report = chaos_report(Quality::Smoke);
    assert_eq!(report.series.len(), 3);
    assert_eq!(
        report.total_audit_violations, 0,
        "the invariant auditor must stay clean across the chaos sweep"
    );
    // Every run in every sweep produced traffic (dead wiring would audit
    // clean trivially).
    for series in &report.series {
        for point in &series.points {
            for agg in &point.strategies {
                assert!(agg.pairs() > 0, "{} produced no traffic", agg.name());
            }
        }
    }
}

#[test]
fn chaos_run_issues_no_invalid_actions() {
    let scenario = partition_scenario(DcrdConfig::chaos_hardened());
    let topo = build_topology(&scenario, 0);
    let workload = build_workload(&scenario, &topo, 0);
    let failure = FailureModel::links_only(LinkFailureModel::new(0.0, 1))
        .with_chaos(build_chaos(&scenario, 0));
    let duration = SimDuration::from_secs(60);
    let config = RuntimeConfig {
        audit: Some(AuditConfig::for_overlay(scenario.nodes, 64)),
        ..RuntimeConfig::paper(duration, 42)
    };
    let runtime = OverlayRuntime::new(&topo, &workload, failure, LossModel::new(0.0), config);
    let mut strategy = DcrdStrategy::new(DcrdConfig::chaos_hardened());
    let log = runtime.run(&mut strategy);
    assert_eq!(log.invalid_sends, 0);
    assert_eq!(log.invalid_delivers, 0);
    let audit = log.audit.expect("auditor was enabled");
    assert!(audit.is_clean(), "violations: {:?}", audit.violations);
    assert!(audit.events_observed > 0);
}
