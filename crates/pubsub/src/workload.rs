//! The paper's pub/sub workload generator.
//!
//! §IV-A of the paper: 10 topics; one publisher per topic on a randomly
//! chosen broker; each publisher sends 1 packet/s (the ADS-B air
//! surveillance rate); per topic a subscription probability `Ps` is drawn
//! uniformly from `[0.2, 0.6]` and every *other* broker subscribes with
//! probability `Ps`; each subscription's delay requirement is `factor ×` the
//! shortest-path delay from publisher to subscriber (factor 3 by default,
//! swept in Fig. 6).

use dcrd_net::paths::{dijkstra, Metric};
use dcrd_net::{NodeId, Topology};
use dcrd_sim::{SimDuration, SimTime};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::topic::{Subscription, TopicId};

/// Subscriber churn (extension): subscriptions join and leave during the
/// run instead of lasting forever.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnConfig {
    /// Join times are drawn uniformly from `[0, join_within)`.
    pub join_within: SimDuration,
    /// Active lifetimes are drawn uniformly from this range.
    pub lifetime: (SimDuration, SimDuration),
}

/// Configuration of the workload generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Number of topics (= number of publishers).
    pub num_topics: usize,
    /// Publish interval per topic (paper: 1 s).
    pub publish_interval: SimDuration,
    /// Subscription probability range per topic (paper: `[0.2, 0.6]`).
    pub ps_range: (f64, f64),
    /// Deadline as a multiple of the shortest-path delay (paper: 3.0).
    pub deadline_factor: f64,
    /// Subscriber churn; `None` (the paper's model) keeps every
    /// subscription active for the whole run.
    pub churn: Option<ChurnConfig>,
}

impl WorkloadConfig {
    /// The paper's configuration (§IV-A).
    pub const PAPER: WorkloadConfig = WorkloadConfig {
        num_topics: 10,
        publish_interval: SimDuration::from_secs(1),
        ps_range: (0.2, 0.6),
        deadline_factor: 3.0,
        churn: None,
    };

    /// Returns a copy with a different deadline factor (Fig. 6 sweep).
    #[must_use]
    pub fn with_deadline_factor(mut self, factor: f64) -> Self {
        self.deadline_factor = factor;
        self
    }
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig::PAPER
    }
}

/// One topic's static description: its publisher, publish schedule and
/// subscriptions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopicSpec {
    /// The topic id.
    pub topic: TopicId,
    /// The publishing broker.
    pub publisher: NodeId,
    /// Interval between publishes.
    pub interval: SimDuration,
    /// Phase offset of the first publish (de-synchronizes topics).
    pub offset: SimDuration,
    /// The topic's subscriptions.
    pub subscriptions: Vec<Subscription>,
}

impl TopicSpec {
    /// The subscriber nodes of this topic (active or not).
    #[must_use]
    pub fn subscribers(&self) -> Vec<NodeId> {
        self.subscriptions.iter().map(|s| s.subscriber).collect()
    }

    /// The subscriptions active when a message publishes at `at` (churn
    /// extension; equals all subscriptions in the paper's model).
    #[must_use]
    pub fn active_subscriptions(&self, at: SimTime) -> Vec<&Subscription> {
        self.subscriptions
            .iter()
            .filter(|s| s.active_at(at))
            .collect()
    }

    /// The deadline of `subscriber`'s subscription, if subscribed.
    #[must_use]
    pub fn deadline_of(&self, subscriber: NodeId) -> Option<SimDuration> {
        self.subscriptions
            .iter()
            .find(|s| s.subscriber == subscriber)
            .map(|s| s.deadline)
    }

    /// The time of the `k`-th publish (0-based).
    #[must_use]
    pub fn publish_time(&self, k: u64) -> SimTime {
        SimTime::ZERO + self.offset + self.interval * k
    }
}

/// A complete static workload: every topic with its publisher and
/// subscriptions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    topics: Vec<TopicSpec>,
}

impl Workload {
    /// Builds a workload from explicit topic specs (used by tests and
    /// examples that need precise control).
    ///
    /// # Panics
    ///
    /// Panics if `topics` is empty or any topic has no subscriptions.
    #[must_use]
    pub fn from_topics(topics: Vec<TopicSpec>) -> Self {
        assert!(!topics.is_empty(), "workload needs at least one topic");
        for t in &topics {
            assert!(
                !t.subscriptions.is_empty(),
                "{} has no subscriptions",
                t.topic
            );
        }
        Workload { topics }
    }

    /// Generates the paper's workload over `topo`.
    ///
    /// Publishers are placed by sampling broker nodes without replacement
    /// (with replacement if there are more topics than brokers). Every
    /// non-publisher broker subscribes to each topic with that topic's
    /// `Ps`; topics that end up with no subscribers get one random
    /// subscriber so every published message has a destination.
    #[must_use]
    pub fn generate<R: Rng + ?Sized>(
        topo: &Topology,
        config: &WorkloadConfig,
        rng: &mut R,
    ) -> Self {
        let nodes: Vec<NodeId> = topo.nodes().collect();
        if nodes.is_empty() {
            return Workload { topics: Vec::new() };
        }
        let mut publishers: Vec<NodeId> = Vec::with_capacity(config.num_topics);
        if config.num_topics <= nodes.len() {
            let mut pool = nodes.clone();
            pool.shuffle(rng);
            publishers.extend(pool.into_iter().take(config.num_topics));
        } else {
            for _ in 0..config.num_topics {
                if let Some(&p) = nodes.choose(rng) {
                    publishers.push(p);
                }
            }
        }

        let topics = publishers
            .iter()
            .enumerate()
            .map(|(i, &publisher)| {
                let sp = dijkstra(topo, publisher, Metric::Delay);
                let ps = rng.gen_range(config.ps_range.0..=config.ps_range.1);
                let mut subscriptions: Vec<Subscription> = Vec::new();
                for &n in nodes.iter().filter(|&&n| n != publisher) {
                    if rng.gen::<f64>() >= ps {
                        continue;
                    }
                    let deadline = deadline_for(&sp, n, config.deadline_factor);
                    subscriptions.push(match config.churn {
                        None => Subscription::new(n, deadline),
                        Some(churn) => {
                            let from = SimTime::from_micros(
                                rng.gen_range(0..churn.join_within.as_micros().max(1)),
                            );
                            let life = SimDuration::from_micros(rng.gen_range(
                                churn.lifetime.0.as_micros()..=churn.lifetime.1.as_micros(),
                            ));
                            Subscription::windowed(n, deadline, from, from + life)
                        }
                    });
                }
                if subscriptions.is_empty() {
                    // A single-broker topology has nobody left to force-
                    // subscribe; the topic then simply stays empty.
                    let candidates: Vec<NodeId> =
                        nodes.iter().copied().filter(|&n| n != publisher).collect();
                    if let Some(&n) = candidates.choose(rng) {
                        subscriptions.push(Subscription::new(
                            n,
                            deadline_for(&sp, n, config.deadline_factor),
                        ));
                    }
                }
                TopicSpec {
                    topic: TopicId::new(i as u32),
                    publisher,
                    interval: config.publish_interval,
                    offset: SimDuration::from_micros(
                        rng.gen_range(0..config.publish_interval.as_micros().max(1)),
                    ),
                    subscriptions,
                }
            })
            .collect();
        Workload { topics }
    }

    /// The topics of the workload.
    #[must_use]
    pub fn topics(&self) -> &[TopicSpec] {
        &self.topics
    }

    /// The spec of `topic`.
    ///
    /// # Panics
    ///
    /// Panics if the topic is not part of this workload.
    #[must_use]
    pub fn topic(&self, topic: TopicId) -> &TopicSpec {
        &self.topics[topic.index()]
    }

    /// Total number of subscriptions across all topics.
    #[must_use]
    pub fn num_subscriptions(&self) -> usize {
        self.topics.iter().map(|t| t.subscriptions.len()).sum()
    }
}

fn deadline_for(
    sp: &dcrd_net::paths::ShortestPaths,
    subscriber: NodeId,
    factor: f64,
) -> SimDuration {
    // A subscriber the publisher cannot reach has no meaningful delay
    // bound; give it an unbounded deadline rather than panicking.
    let Some(base) = sp.cost_to(subscriber) else {
        return SimDuration::MAX;
    };
    SimDuration::from_micros(base).mul_f64(factor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcrd_net::paths::shortest_path;
    use dcrd_net::topology::{full_mesh, random_connected, DelayRange};
    use dcrd_sim::rng::rng_for;

    #[test]
    fn paper_workload_shape() {
        let mut rng = rng_for(1, "wl");
        let topo = full_mesh(20, DelayRange::PAPER, &mut rng);
        let wl = Workload::generate(&topo, &WorkloadConfig::PAPER, &mut rng);
        assert_eq!(wl.topics().len(), 10);
        for t in wl.topics() {
            assert!(!t.subscriptions.is_empty());
            assert!(t.subscriptions.iter().all(|s| s.subscriber != t.publisher));
            assert_eq!(t.interval, SimDuration::from_secs(1));
            assert!(t.offset < SimDuration::from_secs(1));
        }
        // Publishers are distinct when there are enough brokers.
        let mut pubs: Vec<NodeId> = wl.topics().iter().map(|t| t.publisher).collect();
        pubs.sort();
        pubs.dedup();
        assert_eq!(pubs.len(), 10);
    }

    #[test]
    fn subscription_counts_respect_ps_range() {
        // With Ps in [0.2, 0.6] over 19 candidate brokers, the long-run
        // average per topic must be within [0.2*19, 0.6*19] ± noise.
        let mut rng = rng_for(2, "wl");
        let topo = full_mesh(20, DelayRange::PAPER, &mut rng);
        let mut total = 0usize;
        let reps = 50;
        for _ in 0..reps {
            let wl = Workload::generate(&topo, &WorkloadConfig::PAPER, &mut rng);
            total += wl.num_subscriptions();
        }
        let avg_per_topic = total as f64 / (reps * 10) as f64;
        assert!(
            (2.5..=13.0).contains(&avg_per_topic),
            "avg subscriptions per topic {avg_per_topic}"
        );
    }

    #[test]
    fn deadlines_are_factor_times_shortest_delay() {
        let mut rng = rng_for(3, "wl");
        let topo = random_connected(12, 4, DelayRange::PAPER, &mut rng);
        let wl = Workload::generate(&topo, &WorkloadConfig::PAPER, &mut rng);
        for t in wl.topics() {
            for s in &t.subscriptions {
                let best = shortest_path(&topo, t.publisher, s.subscriber, Metric::Delay)
                    .expect("connected");
                let expected = SimDuration::from_micros(best.cost()).mul_f64(3.0);
                assert_eq!(s.deadline, expected);
                assert_eq!(t.deadline_of(s.subscriber), Some(expected));
            }
            assert_eq!(t.deadline_of(t.publisher), None);
        }
    }

    #[test]
    fn publish_times_follow_schedule() {
        let spec = TopicSpec {
            topic: TopicId::new(0),
            publisher: NodeId::new(0),
            interval: SimDuration::from_secs(1),
            offset: SimDuration::from_millis(250),
            subscriptions: vec![Subscription::new(NodeId::new(1), SimDuration::from_secs(1))],
        };
        assert_eq!(spec.publish_time(0), SimTime::from_millis(250));
        assert_eq!(spec.publish_time(2), SimTime::from_millis(2250));
        assert_eq!(spec.subscribers(), vec![NodeId::new(1)]);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let topo = full_mesh(15, DelayRange::PAPER, &mut rng_for(4, "t"));
        let a = Workload::generate(&topo, &WorkloadConfig::PAPER, &mut rng_for(5, "w"));
        let b = Workload::generate(&topo, &WorkloadConfig::PAPER, &mut rng_for(5, "w"));
        assert_eq!(a, b);
    }

    #[test]
    fn more_topics_than_brokers_is_allowed() {
        let mut rng = rng_for(6, "wl");
        let topo = full_mesh(4, DelayRange::PAPER, &mut rng);
        let cfg = WorkloadConfig {
            num_topics: 9,
            ..WorkloadConfig::PAPER
        };
        let wl = Workload::generate(&topo, &cfg, &mut rng);
        assert_eq!(wl.topics().len(), 9);
    }

    #[test]
    fn deadline_factor_override() {
        let cfg = WorkloadConfig::PAPER.with_deadline_factor(1.5);
        assert!((cfg.deadline_factor - 1.5).abs() < f64::EPSILON);
        assert_eq!(cfg.num_topics, 10);
    }

    #[test]
    fn churned_workload_has_finite_windows() {
        let mut rng = rng_for(9, "churn");
        let topo = full_mesh(15, DelayRange::PAPER, &mut rng);
        let cfg = WorkloadConfig {
            churn: Some(ChurnConfig {
                join_within: SimDuration::from_secs(60),
                lifetime: (SimDuration::from_secs(30), SimDuration::from_secs(90)),
            }),
            ..WorkloadConfig::PAPER
        };
        let wl = Workload::generate(&topo, &cfg, &mut rng);
        for t in wl.topics() {
            for s in &t.subscriptions {
                assert!(s.active_from < SimTime::from_secs(60));
                let life = s.active_until.saturating_since(s.active_from);
                assert!(life >= SimDuration::from_secs(30));
                assert!(life <= SimDuration::from_secs(90));
            }
            // At some instant not every subscription is active.
            let active_at_zero = t.active_subscriptions(SimTime::ZERO).len();
            assert!(active_at_zero <= t.subscriptions.len());
        }
    }

    #[test]
    fn paper_workload_subscriptions_are_always_active() {
        let mut rng = rng_for(10, "churn");
        let topo = full_mesh(10, DelayRange::PAPER, &mut rng);
        let wl = Workload::generate(&topo, &WorkloadConfig::PAPER, &mut rng);
        for t in wl.topics() {
            assert_eq!(
                t.active_subscriptions(SimTime::from_secs(100_000)).len(),
                t.subscriptions.len()
            );
        }
    }

    #[test]
    #[should_panic(expected = "no subscriptions")]
    fn from_topics_rejects_empty_subscriptions() {
        let spec = TopicSpec {
            topic: TopicId::new(0),
            publisher: NodeId::new(0),
            interval: SimDuration::from_secs(1),
            offset: SimDuration::ZERO,
            subscriptions: vec![],
        };
        let _ = Workload::from_topics(vec![spec]);
    }
}
