//! Stable timestamped event queue.
//!
//! The queue is the heart of the discrete-event engine: components schedule
//! events at future instants and the run loop pops them in time order.
//! Ties are broken by insertion order (FIFO), which makes simulation runs
//! fully deterministic for a given seed — a property the test suite and the
//! paper-reproduction experiments rely on.
//!
//! The backing store is a hierarchical [`TimerWheel`]: O(1) amortized
//! insertion and expiry instead of the former `BinaryHeap`'s per-event
//! `O(log n)` sift, with byte-identical pop order (see the wheel's module
//! docs for the determinism argument).

use crate::time::{SimDuration, SimTime};
use crate::wheel::TimerWheel;

/// A deterministic min-priority queue of timestamped events.
///
/// Events pop in non-decreasing time order; events with equal timestamps pop
/// in the order they were scheduled.
///
/// # Example
///
/// ```
/// use dcrd_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_millis(2), 'b');
/// q.schedule(SimTime::from_millis(1), 'a');
/// q.schedule(SimTime::from_millis(2), 'c');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']);
/// ```
pub struct EventQueue<E> {
    wheel: TimerWheel<E>,
    now: SimTime,
    popped: u64,
    clamped: u64,
    peak_len: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            wheel: TimerWheel::new(),
            now: SimTime::ZERO,
            popped: 0,
            clamped: 0,
            peak_len: 0,
        }
    }

    /// Creates an empty queue with capacity for `cap` pending events.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            wheel: TimerWheel::with_capacity(cap),
            ..Self::new()
        }
    }

    /// Number of events the queue can hold without reallocating (at least
    /// the `with_capacity` request).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.wheel.capacity()
    }

    /// The current simulated time: the timestamp of the most recently popped
    /// event (or [`SimTime::ZERO`] before the first pop).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events popped so far.
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Number of events whose requested timestamp lay in the past and were
    /// clamped to the current time. Anything non-zero means a scheduling
    /// caller computed a stale deadline — observable instead of silently
    /// reordering causality.
    #[must_use]
    pub fn clamped(&self) -> u64 {
        self.clamped
    }

    /// The largest number of simultaneously pending events seen so far —
    /// what [`with_capacity`](Self::with_capacity) should have asked for.
    #[must_use]
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// Number of events still pending.
    #[must_use]
    pub fn len(&self) -> usize {
        self.wheel.len()
    }

    /// Returns `true` if no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.wheel.is_empty()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// Scheduling into the past would silently corrupt causality, so `at`
    /// is clamped to the current simulated time. Returns `true` when the
    /// clamp engaged — i.e. the caller asked for a timestamp strictly
    /// before `now` — so the runtime can surface the bug instead of
    /// burying it ([`clamped`](Self::clamped) counts every occurrence).
    pub fn schedule(&mut self, at: SimTime, event: E) -> bool {
        let clamped = at < self.now;
        if clamped {
            self.clamped += 1;
        }
        let at = at.max(self.now);
        self.wheel.insert(at.as_micros(), event);
        self.peak_len = self.peak_len.max(self.wheel.len());
        clamped
    }

    /// Schedules `event` after `delay` relative to the current time.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Timestamp of the next pending event, if any.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.wheel.peek_time().map(SimTime::from_micros)
    }

    /// Pops the next event, advancing the simulated clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let (at_us, event) = self.wheel.pop()?;
        let at = SimTime::from_micros(at_us);
        debug_assert!(at >= self.now, "event queue time went backwards");
        self.now = at;
        self.popped += 1;
        Some((at, event))
    }

    /// Drops all pending events without advancing the clock.
    pub fn clear(&mut self) {
        self.wheel.clear();
    }
}

impl<E: std::fmt::Debug> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.wheel.len())
            .field("processed", &self.popped)
            .field("clamped", &self.clamped)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), 3);
        q.schedule(SimTime::from_millis(10), 1);
        q.schedule(SimTime::from_millis(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_timestamps_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_millis(7));
        assert_eq!(q.events_processed(), 1);
    }

    #[test]
    fn schedule_after_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), "first");
        q.pop();
        q.schedule_after(SimDuration::from_millis(5), "second");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_millis(15));
    }

    #[test]
    fn scheduling_in_the_past_clamps_and_counts() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), 1);
        q.pop();
        assert_eq!(q.clamped(), 0);
        // Strictly past: clamped to now and counted.
        assert!(q.schedule(SimTime::from_millis(5), 2));
        assert_eq!(q.clamped(), 1);
        // Exactly now is legitimate (`now + 0` timers), not a clamp.
        assert!(!q.schedule(SimTime::from_millis(10), 3));
        assert_eq!(q.clamped(), 1);
        let (t, e) = q.pop().unwrap();
        assert_eq!((t, e), (SimTime::from_millis(10), 2));
        let (t, e) = q.pop().unwrap();
        assert_eq!((t, e), (SimTime::from_millis(10), 3));
    }

    #[test]
    fn peak_len_tracks_high_water_mark() {
        let mut q = EventQueue::new();
        assert_eq!(q.peak_len(), 0);
        for i in 0..10 {
            q.schedule(SimTime::from_millis(i), i);
        }
        assert_eq!(q.peak_len(), 10);
        while q.pop().is_some() {}
        assert_eq!(q.peak_len(), 10, "peak survives draining");
        q.schedule(SimTime::from_millis(100), 0);
        assert_eq!(q.peak_len(), 10);
    }

    #[test]
    fn with_capacity_preallocates() {
        let q: EventQueue<()> = EventQueue::with_capacity(1024);
        assert!(q.capacity() >= 1024);
        let q: EventQueue<()> = EventQueue::new();
        // A fresh queue has no obligations beyond "some capacity".
        assert!(q.is_empty());
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::with_capacity(8);
        assert!(q.is_empty());
        q.schedule(SimTime::from_millis(1), ());
        q.schedule(SimTime::from_millis(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(1)));
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Any schedule order pops sorted by (time, insertion order).
            #[test]
            fn pops_sorted_with_stable_ties(times in proptest::collection::vec(0u64..50, 1..200)) {
                let mut q = EventQueue::new();
                for (i, &t) in times.iter().enumerate() {
                    q.schedule(SimTime::from_millis(t), i);
                }
                let mut expected: Vec<(u64, usize)> =
                    times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
                expected.sort();
                let mut popped = Vec::new();
                while let Some((at, i)) = q.pop() {
                    popped.push((at.as_micros() / 1000, i));
                }
                prop_assert_eq!(popped, expected);
            }

            /// The clock never moves backwards regardless of input.
            #[test]
            fn clock_is_monotone(times in proptest::collection::vec(0u64..1000, 1..100)) {
                let mut q = EventQueue::new();
                for &t in &times {
                    q.schedule(SimTime::from_micros(t), ());
                }
                let mut last = SimTime::ZERO;
                while let Some((at, ())) = q.pop() {
                    prop_assert!(at >= last);
                    last = at;
                }
                prop_assert_eq!(q.events_processed(), times.len() as u64);
            }

            /// Interleaving schedules between pops (including at the exact
            /// current instant) still pops sorted with stable ties — the
            /// wheel's ready-lane and cascade paths agree with a stable
            /// heap.
            #[test]
            fn interleaved_schedules_stay_sorted(
                initial in proptest::collection::vec(0u64..5000, 1..50),
                chased in proptest::collection::vec(0u64..5000, 1..50),
            ) {
                let mut q = EventQueue::new();
                let mut seq = 0usize;
                let mut expected: Vec<(u64, usize)> = Vec::new();
                for &t in &initial {
                    q.schedule(SimTime::from_micros(t), seq);
                    expected.push((t, seq));
                    seq += 1;
                }
                let mut feed = chased.iter();
                let mut popped = Vec::new();
                while let Some((at, i)) = q.pop() {
                    popped.push((at.as_micros(), i));
                    if let Some(&extra) = feed.next() {
                        // Relative offsets keep the request at or after now.
                        let t = at.as_micros() + extra;
                        q.schedule(SimTime::from_micros(t), seq);
                        expected.push((t, seq));
                        seq += 1;
                    }
                }
                expected.sort();
                prop_assert_eq!(popped, expected);
            }
        }
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(1), 1u32);
        q.schedule(SimTime::from_millis(100), 100);
        let mut seen = Vec::new();
        while let Some((t, e)) = q.pop() {
            seen.push(e);
            if e == 1 {
                // Cascade: schedule intermediate events while draining.
                q.schedule(t + SimDuration::from_millis(1), 2);
                q.schedule(t + SimDuration::from_millis(2), 3);
            }
        }
        assert_eq!(seen, vec![1, 2, 3, 100]);
    }
}
