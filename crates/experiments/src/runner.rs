//! Deterministic scenario execution and parallel sweeps.
//!
//! Each `(scenario, strategy, repetition)` triple is one fully deterministic
//! simulation: the repetition index derives independent seeds for the
//! topology, the workload, the failure schedule and the runtime's random
//! draws. Strategies being compared at the same repetition see the **same**
//! topology, workload and failures — paired comparison, exactly how the
//! paper plots its curves.

use dcrd_baselines::multipath::multipath;
use dcrd_baselines::oracle::oracle;
use dcrd_baselines::tree::{d_tree, r_tree};
use dcrd_core::{DcrdConfig, DcrdStrategy};
use dcrd_metrics::{AggregateMetrics, RunMetrics};
use dcrd_net::chaos::{ChaosModel, CrashRestartModel, GrayLinkModel, PartitionModel};
use dcrd_net::failure::{
    BurstFailureModel, FailureModel, LinkFailureModel, LinkOutageModel, NodeFailureModel,
};
use dcrd_net::gossip::GossipConfig;
use dcrd_net::loss::LossModel;
use dcrd_net::membership::{BrokerChurnModel, ChurnEvent};
use dcrd_net::topology::{full_mesh, geo_tiered, random_connected, DelayRange};
use dcrd_net::Topology;
use dcrd_pubsub::runtime::{Dissemination, OverlayRuntime, RuntimeConfig};
use dcrd_pubsub::strategy::{RoutingStrategy, RunParams};
use dcrd_pubsub::workload::{Workload, WorkloadConfig};
use dcrd_pubsub::AuditConfig;
use dcrd_sim::rng::{derive_seed_indexed, rng_for_indexed};
use dcrd_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::scenario::{ControlPlane, Scenario, TopologyKind};

/// The strategies under comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StrategyKind {
    /// The paper's contribution (configured by `Scenario::dcrd`).
    Dcrd,
    /// Minimum-hop tree.
    RTree,
    /// Shortest-delay tree.
    DTree,
    /// Failure-aware shortest-delay routing with global knowledge.
    Oracle,
    /// Two pinned paths per subscriber.
    Multipath,
    /// Multipath variant using Bhandari edge-disjoint pairs (ablation; not
    /// part of the paper's legend).
    MultipathDisjoint,
}

impl StrategyKind {
    /// All five strategies in the paper's legend order.
    pub const ALL: [StrategyKind; 5] = [
        StrategyKind::Dcrd,
        StrategyKind::RTree,
        StrategyKind::DTree,
        StrategyKind::Oracle,
        StrategyKind::Multipath,
    ];

    /// The paper's legend label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            StrategyKind::Dcrd => "DCRD",
            StrategyKind::RTree => "R-Tree",
            StrategyKind::DTree => "D-Tree",
            StrategyKind::Oracle => "ORACLE",
            StrategyKind::Multipath => "Multipath",
            StrategyKind::MultipathDisjoint => "Multipath-ED",
        }
    }

    fn instantiate(self, config: &DcrdConfig) -> Box<dyn RoutingStrategy + Send> {
        match self {
            StrategyKind::Dcrd => Box::new(DcrdStrategy::new(*config)),
            StrategyKind::RTree => Box::new(r_tree()),
            StrategyKind::DTree => Box::new(d_tree()),
            StrategyKind::Oracle => Box::new(oracle()),
            StrategyKind::Multipath => Box::new(multipath()),
            StrategyKind::MultipathDisjoint => {
                Box::new(dcrd_baselines::multipath::multipath_disjoint())
            }
        }
    }
}

/// Builds the deterministic topology of one repetition.
#[must_use]
pub fn build_topology(scenario: &Scenario, rep: u32) -> Topology {
    let mut rng = rng_for_indexed(scenario.seed, "topology", u64::from(rep));
    match scenario.topology {
        TopologyKind::FullMesh => full_mesh(scenario.nodes, DelayRange::PAPER, &mut rng),
        TopologyKind::RandomDegree(d) => {
            random_connected(scenario.nodes, d, DelayRange::PAPER, &mut rng)
        }
        TopologyKind::GeoTiered {
            regions,
            per_region,
        } => geo_tiered(
            regions,
            per_region,
            // Fast intra-region links, slow inter-region gateways: a
            // bimodal delay distribution bracketing the paper's range.
            DelayRange {
                min: SimDuration::from_millis(2),
                max: SimDuration::from_millis(8),
            },
            DelayRange {
                min: SimDuration::from_millis(60),
                max: SimDuration::from_millis(120),
            },
            &mut rng,
        ),
    }
}

/// Builds the deterministic workload of one repetition over `topo`.
#[must_use]
pub fn build_workload(scenario: &Scenario, topo: &Topology, rep: u32) -> Workload {
    let mut rng = rng_for_indexed(scenario.seed, "workload", u64::from(rep));
    let config = WorkloadConfig {
        num_topics: scenario.num_topics,
        publish_interval: dcrd_sim::SimDuration::from_secs(1),
        ps_range: (0.2, 0.6),
        deadline_factor: scenario.deadline_factor,
        churn: scenario.churn,
        popularity: scenario.popularity,
        burst: scenario.burst,
    };
    Workload::generate(topo, &config, &mut rng)
}

/// Builds the deterministic chaos model of one repetition. Empty (and
/// dropped by [`FailureModel::with_chaos`]) when the scenario sets no chaos
/// knobs.
#[must_use]
pub fn build_chaos(scenario: &Scenario, rep: u32) -> ChaosModel {
    let mut chaos = ChaosModel::none();
    if let Some(p) = scenario.partition {
        chaos = chaos.with_partition(PartitionModel::new(
            p.fraction,
            dcrd_sim::SimDuration::from_secs(p.window_secs),
            dcrd_sim::SimDuration::from_secs(p.period_secs),
            derive_seed_indexed(scenario.seed, "chaos-partition", u64::from(rep)),
        ));
    }
    if let Some(c) = scenario.crashes {
        chaos = chaos.with_crashes(CrashRestartModel::new(
            c.rate,
            c.mean_down_epochs,
            derive_seed_indexed(scenario.seed, "chaos-crashes", u64::from(rep)),
        ));
    }
    if let Some(g) = scenario.gray {
        chaos = chaos.with_gray(GrayLinkModel::new(
            g.fraction,
            g.extra_loss,
            g.delay_factor,
            derive_seed_indexed(scenario.seed, "chaos-gray", u64::from(rep)),
        ));
    }
    chaos
}

/// Builds the deterministic broker-churn schedule of one repetition, if
/// the scenario asks for one. Every publisher and the first subscriber of
/// each topic are protected: each topic keeps a live anchor whose delivery
/// the sweep can meaningfully compare across repair strategies.
#[must_use]
pub fn build_broker_churn(
    scenario: &Scenario,
    workload: &Workload,
    rep: u32,
) -> Option<BrokerChurnModel> {
    let spec = scenario.broker_churn?;
    let horizon = (scenario.duration.as_micros() / 1_000_000).max(6);
    let mut model = BrokerChurnModel::new(
        spec.rate,
        horizon,
        derive_seed_indexed(scenario.seed, "broker-churn", u64::from(rep)),
    );
    for t in workload.topics() {
        model = model.protect(t.publisher);
        if let Some(s) = t.subscriptions.first() {
            model = model.protect(s.subscriber);
        }
    }
    Some(model)
}

/// Restricts every subscription window to its broker's churn presence
/// interval: a subscriber that joins late only expects messages published
/// after it joined, and one that departs stops expecting them at its
/// exit. Without this, messages addressed to a broker scheduled to be
/// absent would count as misses no repair strategy could prevent, and the
/// sweep would measure the schedule instead of the repair path.
#[must_use]
pub fn confine_to_churn(workload: &Workload, churn: &BrokerChurnModel) -> Workload {
    let mut topics = workload.topics().to_vec();
    for topic in &mut topics {
        for sub in &mut topic.subscriptions {
            match churn.event(sub.subscriber) {
                None => {}
                Some(ChurnEvent::Join(e)) => {
                    sub.active_from = sub.active_from.max(SimTime::from_secs(e));
                }
                Some(ChurnEvent::Leave(e)) | Some(ChurnEvent::Death(e)) => {
                    sub.active_until = sub.active_until.min(SimTime::from_secs(e));
                }
            }
        }
    }
    Workload::from_topics(topics)
}

/// Runs one `(scenario, strategy, repetition)` triple.
#[must_use]
pub fn run_once(scenario: &Scenario, kind: StrategyKind, rep: u32) -> RunMetrics {
    run_with(scenario, kind, rep, false).0
}

/// Like [`run_once`] but with trace capture on, returning the run's
/// FNV-1a trace digest alongside the metrics. Determinism gates rerun a
/// triple and require the digests byte-identical.
#[must_use]
pub fn run_traced(scenario: &Scenario, kind: StrategyKind, rep: u32) -> (RunMetrics, u64) {
    run_with(scenario, kind, rep, true)
}

fn run_with(
    scenario: &Scenario,
    kind: StrategyKind,
    rep: u32,
    capture_trace: bool,
) -> (RunMetrics, u64) {
    let topo = build_topology(scenario, rep);
    let workload = build_workload(scenario, &topo, rep);
    let broker_churn = build_broker_churn(scenario, &workload, rep);
    let workload = match &broker_churn {
        Some(churn) => confine_to_churn(&workload, churn),
        None => workload,
    };
    let link_seed = derive_seed_indexed(scenario.seed, "failures", u64::from(rep));
    let links = match scenario.burst_mean_epochs {
        None => LinkOutageModel::Epoch(LinkFailureModel::new(scenario.pf, link_seed)),
        Some(mean) => LinkOutageModel::Burst(BurstFailureModel::new(scenario.pf, mean, link_seed)),
    };
    let nodes = (scenario.pn > 0.0).then(|| {
        NodeFailureModel::new(
            scenario.pn,
            derive_seed_indexed(scenario.seed, "node-failures", u64::from(rep)),
        )
    });
    let mut chaos = build_chaos(scenario, rep);
    if let Some(churn) = broker_churn {
        chaos = chaos.with_churn(churn);
    }
    let failure = FailureModel::new(links, nodes).with_chaos(chaos);
    let loss = LossModel::new(scenario.pl);
    let config = RuntimeConfig {
        duration: scenario.duration,
        params: RunParams {
            m: scenario.m,
            ack_timeout_factor: scenario.ack_timeout_factor,
            ..RunParams::default()
        },
        seed: derive_seed_indexed(scenario.seed, "runtime", u64::from(rep)),
        monitoring: scenario.monitoring,
        ack_transit: scenario.ack_transit,
        processing_time: scenario.service_time,
        queue_limit: scenario.queue_limit,
        shed_policy: scenario.shed_policy,
        dissemination: match scenario.control_plane {
            ControlPlane::Oracle => Dissemination::Oracle,
            ControlPlane::Gossip { loss } => Dissemination::Gossip(GossipConfig {
                loss,
                seed: derive_seed_indexed(scenario.seed, "gossip", u64::from(rep)),
                ..GossipConfig::default()
            }),
            ControlPlane::None => Dissemination::None,
        },
        audit: scenario.audit.then(|| {
            let cfg = AuditConfig::for_overlay(scenario.nodes, 64);
            if scenario.audit_sequences {
                cfg.with_sequence_check()
            } else {
                cfg
            }
        }),
        capture_trace,
        ..RuntimeConfig::paper(scenario.duration, 0)
    };
    let runtime = OverlayRuntime::new(&topo, &workload, failure, loss, config);
    let mut strategy = kind.instantiate(&scenario.dcrd);
    let log = runtime.run(strategy.as_mut());
    let digest = log.trace.as_ref().map_or(0, |t| t.digest());
    (RunMetrics::from_log(&log), digest)
}

/// Runs all repetitions of one strategy and pools them.
#[must_use]
pub fn run_scenario(scenario: &Scenario, kind: StrategyKind) -> AggregateMetrics {
    run_labeled(scenario, kind, kind.label())
}

/// Like [`run_scenario`] but with a custom label (used when one strategy
/// appears several times with different parameters, e.g. "DCRD (m=2)").
#[must_use]
pub fn run_labeled(scenario: &Scenario, kind: StrategyKind, label: &str) -> AggregateMetrics {
    let mut agg = AggregateMetrics::new(label);
    let runs: Vec<RunMetrics> = parallel_map((0..scenario.repetitions).collect(), |rep| {
        run_once(scenario, kind, rep)
    });
    for run in &runs {
        agg.add(run);
    }
    agg
}

/// Runs several strategies on identical repetitions (paired comparison).
#[must_use]
pub fn run_comparison(scenario: &Scenario, kinds: &[StrategyKind]) -> Vec<AggregateMetrics> {
    // Flatten (kind, rep) into one parallel batch for maximum utilization.
    let jobs: Vec<(usize, u32)> = (0..kinds.len())
        .flat_map(|k| (0..scenario.repetitions).map(move |r| (k, r)))
        .collect();
    let results: Vec<(usize, RunMetrics)> =
        parallel_map(jobs, |(k, rep)| (k, run_once(scenario, kinds[k], rep)));
    let mut aggs: Vec<AggregateMetrics> = kinds
        .iter()
        .map(|k| AggregateMetrics::new(k.label()))
        .collect();
    for (k, run) in &results {
        aggs[*k].add(run);
    }
    aggs
}

/// Simple order-preserving parallel map over a work list using scoped
/// threads (bounded by available parallelism).
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4);
    parallel_map_with(items, threads, f)
}

/// [`parallel_map`] with an explicit worker count. Results are in item
/// order regardless of `threads`, so any worker count produces identical
/// output — the deterministic-sweep tests pin this down.
pub fn parallel_map_with<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = threads.min(items.len().max(1));
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let jobs: Vec<(usize, T)> = items.into_iter().enumerate().collect();
    let queue = crossbeam::queue::SegQueue::new();
    for job in jobs {
        queue.push(job);
    }
    let mut results: Vec<(usize, R)> = Vec::new();
    crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let queue = &queue;
                let f = &f;
                scope.spawn(move |_| {
                    let mut local = Vec::new();
                    while let Some((i, item)) = queue.pop() {
                        local.push((i, f(item)));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            results.extend(h.join().expect("worker panicked"));
        }
    })
    .expect("scope panicked");
    results.sort_by_key(|(i, _)| *i);
    results.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioBuilder;

    fn tiny(pf: f64) -> Scenario {
        ScenarioBuilder::new()
            .nodes(10)
            .full_mesh()
            .failure_probability(pf)
            .topics(4)
            .duration_secs(20)
            .repetitions(2)
            .seed(7)
            .build()
    }

    #[test]
    fn run_once_is_deterministic() {
        let s = tiny(0.05);
        let a = run_once(&s, StrategyKind::Dcrd, 0);
        let b = run_once(&s, StrategyKind::Dcrd, 0);
        assert_eq!(a.delivery_ratio(), b.delivery_ratio());
        assert_eq!(a.packets_per_subscriber(), b.packets_per_subscriber());
        let c = run_once(&s, StrategyKind::Dcrd, 1);
        // Different repetition → different topology → different traffic.
        assert_ne!(a.pairs(), 0);
        assert!(c.pairs() > 0);
    }

    #[test]
    fn comparison_preserves_paper_ordering() {
        let s = tiny(0.08);
        let aggs = run_comparison(&s, &StrategyKind::ALL);
        let by_name = |n: &str| {
            aggs.iter()
                .find(|a| a.name() == n)
                .unwrap_or_else(|| panic!("{n} missing"))
        };
        let dcrd = by_name("DCRD");
        let oracle = by_name("ORACLE");
        let rtree = by_name("R-Tree");
        let dtree = by_name("D-Tree");
        let multipath = by_name("Multipath");
        // The paper's Fig. 2 ordering at high Pf.
        assert!(
            oracle.delivery_ratio() > 0.999,
            "oracle {}",
            oracle.delivery_ratio()
        );
        assert!(dcrd.delivery_ratio() > multipath.delivery_ratio());
        assert!(multipath.delivery_ratio() > dtree.delivery_ratio());
        assert!(rtree.delivery_ratio() > dtree.delivery_ratio());
        // Multipath costs the most traffic; R-Tree the least (mesh).
        assert!(multipath.packets_per_subscriber() > dcrd.packets_per_subscriber());
        assert!((rtree.packets_per_subscriber() - 1.0).abs() < 0.01);
    }

    #[test]
    fn run_scenario_pools_reps() {
        let s = tiny(0.0);
        let agg = run_scenario(&s, StrategyKind::RTree);
        assert_eq!(agg.runs(), 2);
        assert!(agg.pairs() > 0);
        assert!((agg.delivery_ratio() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn labeled_runs_rename() {
        let s = tiny(0.0);
        let agg = run_labeled(&s, StrategyKind::DTree, "D-Tree (m=2)");
        assert_eq!(agg.name(), "D-Tree (m=2)");
    }

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..100).collect::<Vec<u32>>(), |x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<u32>>());
        let empty: Vec<u32> = parallel_map(Vec::<u32>::new(), |x| x);
        assert!(empty.is_empty());
    }

    #[test]
    fn sweep_results_identical_across_thread_counts() {
        // The whole experiments pipeline must not depend on scheduling:
        // the same sweep run single-threaded and with a worker pool has to
        // produce byte-identical results.
        let s = tiny(0.06);
        let jobs: Vec<(StrategyKind, u32)> = [StrategyKind::Dcrd, StrategyKind::DTree]
            .into_iter()
            .flat_map(|k| (0..s.repetitions).map(move |r| (k, r)))
            .collect();
        let serial: Vec<RunMetrics> =
            parallel_map_with(jobs.clone(), 1, |(k, rep)| run_once(&s, k, rep));
        let pooled: Vec<RunMetrics> = parallel_map_with(jobs, 4, |(k, rep)| run_once(&s, k, rep));
        assert_eq!(serial, pooled);
        assert_eq!(format!("{serial:?}"), format!("{pooled:?}"));
    }

    #[test]
    fn strategy_labels() {
        assert_eq!(StrategyKind::Dcrd.label(), "DCRD");
        assert_eq!(StrategyKind::MultipathDisjoint.label(), "Multipath-ED");
        assert_eq!(StrategyKind::ALL.len(), 5);
    }

    #[test]
    fn burst_scenarios_run_and_differ_from_iid() {
        let iid = ScenarioBuilder::new()
            .nodes(10)
            .degree(4)
            .failure_probability(0.1)
            .duration_secs(30)
            .repetitions(1)
            .seed(5)
            .build();
        let bursty = ScenarioBuilder::new()
            .nodes(10)
            .degree(4)
            .failure_probability(0.1)
            .bursty_failures(4.0)
            .duration_secs(30)
            .repetitions(1)
            .seed(5)
            .build();
        let a = run_once(&iid, StrategyKind::DTree, 0);
        let b = run_once(&bursty, StrategyKind::DTree, 0);
        // Same marginal rate but a different outage process: the tree's
        // delivery pattern must differ (identical values would mean the
        // burst wiring is dead).
        assert_ne!(a.delivery_ratio(), b.delivery_ratio());
        assert!(b.pairs() > 0);
    }

    #[test]
    fn chaos_scenarios_degrade_delivery_with_a_clean_audit() {
        use crate::scenario::{CrashSpec, GraySpec, PartitionSpec};
        let clean = ScenarioBuilder::new()
            .nodes(12)
            .degree(4)
            .failure_probability(0.0)
            .loss_rate(0.0)
            .audit(true)
            .duration_secs(60)
            .repetitions(1)
            .seed(11)
            .build();
        let chaotic = ScenarioBuilder::new()
            .nodes(12)
            .degree(4)
            .failure_probability(0.0)
            .loss_rate(0.0)
            .partition(PartitionSpec {
                fraction: 0.25,
                window_secs: 10,
                period_secs: 20,
            })
            .crashes(CrashSpec {
                rate: 0.01,
                mean_down_epochs: 2.0,
            })
            .gray_links(GraySpec {
                fraction: 0.2,
                extra_loss: 0.2,
                delay_factor: 2.0,
            })
            .audit(true)
            .duration_secs(60)
            .repetitions(1)
            .seed(11)
            .build();
        let a = run_once(&clean, StrategyKind::Dcrd, 0);
        let b = run_once(&chaotic, StrategyKind::Dcrd, 0);
        assert!((a.delivery_ratio() - 1.0).abs() < 1e-12);
        assert!(
            b.delivery_ratio() < a.delivery_ratio(),
            "chaos must cost something: {} vs {}",
            b.delivery_ratio(),
            a.delivery_ratio()
        );
        // The auditor ran on both and found no invariant breaches.
        assert_eq!(a.audit_violations(), 0);
        assert_eq!(b.audit_violations(), 0);
    }

    #[test]
    fn empty_chaos_model_is_dropped() {
        let s = tiny(0.0);
        assert!(build_chaos(&s, 0).is_empty());
    }

    #[test]
    fn broker_churn_protects_publishers_and_anchor_subscribers() {
        use crate::scenario::BrokerChurnSpec;
        let s = ScenarioBuilder::new()
            .nodes(12)
            .degree(4)
            .broker_churn(BrokerChurnSpec { rate: 1.0 })
            .duration_secs(30)
            .repetitions(1)
            .seed(3)
            .build();
        let topo = build_topology(&s, 0);
        let workload = build_workload(&s, &topo, 0);
        let churn = build_broker_churn(&s, &workload, 0).expect("churn spec set");
        for t in workload.topics() {
            assert!(churn.is_protected(t.publisher), "{} churns", t.publisher);
            let anchor = t.subscriptions[0].subscriber;
            assert!(churn.is_protected(anchor), "anchor {anchor} churns");
            assert!(churn.event(t.publisher).is_none());
        }
        assert!(build_broker_churn(&tiny(0.0), &workload, 0).is_none());
    }

    #[test]
    fn confined_windows_sit_inside_broker_presence() {
        use crate::scenario::BrokerChurnSpec;
        // Large overlay, few topics: most brokers are unprotected churners,
        // so some subscription window must get clamped at rate 1.0.
        let s = ScenarioBuilder::new()
            .nodes(24)
            .degree(4)
            .broker_churn(BrokerChurnSpec { rate: 1.0 })
            .topics(3)
            .duration_secs(30)
            .repetitions(1)
            .seed(3)
            .build();
        let topo = build_topology(&s, 0);
        let workload = build_workload(&s, &topo, 0);
        let churn = build_broker_churn(&s, &workload, 0).expect("churn spec set");
        let confined = confine_to_churn(&workload, &churn);
        let mut clamped = 0usize;
        for t in confined.topics() {
            for sub in &t.subscriptions {
                match churn.event(sub.subscriber) {
                    None => {}
                    Some(ChurnEvent::Join(e)) => {
                        assert!(sub.active_from >= SimTime::from_secs(e));
                        clamped += 1;
                    }
                    Some(ChurnEvent::Leave(e)) | Some(ChurnEvent::Death(e)) => {
                        assert!(sub.active_until <= SimTime::from_secs(e));
                        clamped += 1;
                    }
                }
            }
        }
        assert!(clamped > 0, "rate-1.0 churn clamped no windows");
    }

    #[test]
    fn node_failure_scenarios_hurt_delivery() {
        let clean = ScenarioBuilder::new()
            .nodes(12)
            .degree(5)
            .failure_probability(0.0)
            .loss_rate(0.0)
            .duration_secs(30)
            .repetitions(1)
            .seed(6)
            .build();
        let failing = ScenarioBuilder::new()
            .nodes(12)
            .degree(5)
            .failure_probability(0.0)
            .loss_rate(0.0)
            .node_failure_probability(0.1)
            .duration_secs(30)
            .repetitions(1)
            .seed(6)
            .build();
        let a = run_once(&clean, StrategyKind::Dcrd, 0);
        let b = run_once(&failing, StrategyKind::Dcrd, 0);
        assert!((a.delivery_ratio() - 1.0).abs() < 1e-12);
        assert!(
            b.delivery_ratio() < a.delivery_ratio(),
            "node failures must cost something: {} vs {}",
            b.delivery_ratio(),
            a.delivery_ratio()
        );
    }
}
