//! Refactor-equivalence pins: the CSR adjacency + hierarchical timer wheel
//! engine must reproduce the pre-refactor map/heap implementation byte for
//! byte.
//!
//! The digest constants below were recorded by running these exact seeded
//! chaos scenarios on the map-adjacency/binary-heap engine (the tree as of
//! the commit preceding the CSR/timer-wheel rebuild) with
//! `DCRD_PRINT_DIGESTS=1`. Any divergence — a neighbor order change in the
//! CSR layout, a tie-break change in the wheel, an iteration-order change
//! in the struct-of-arrays router state — shows up here as a digest
//! mismatch long before it skews a figure.

use dcrd::core::{DcrdConfig, DcrdStrategy};
use dcrd::net::chaos::{ChaosModel, CrashRestartModel, GrayLinkModel};
use dcrd::net::failure::{FailureModel, LinkFailureModel, LinkOutageModel};
use dcrd::net::loss::LossModel;
use dcrd::net::topology::{random_connected, DelayRange};
use dcrd::pubsub::runtime::{OverlayRuntime, RuntimeConfig};
use dcrd::pubsub::workload::{Workload, WorkloadConfig};
use dcrd::sim::rng::rng_for;
use dcrd::sim::SimDuration;

/// Trace digest of the seeded chaos scenario at `nodes` brokers.
fn chaos_digest(nodes: usize, degree: usize, duration_secs: u64, seed: u64) -> (u64, u64) {
    let topo = random_connected(nodes, degree, DelayRange::PAPER, &mut rng_for(seed, "topo"));
    let workload = Workload::generate(
        &topo,
        &WorkloadConfig {
            num_topics: 12,
            ..WorkloadConfig::PAPER
        },
        &mut rng_for(seed, "workload"),
    );
    let chaos = ChaosModel::none()
        .with_crashes(CrashRestartModel::new(0.02, 2.0, seed ^ 0xC4A5))
        .with_gray(GrayLinkModel::new(0.15, 0.2, 2.0, seed ^ 0x6EA7));
    let links = LinkOutageModel::Epoch(LinkFailureModel::new(0.05, seed ^ 0xF00D));
    let failure = FailureModel::new(links, None).with_chaos(chaos);
    let mut config = RuntimeConfig::paper(SimDuration::from_secs(duration_secs), seed);
    config.capture_trace = true;
    let runtime = OverlayRuntime::new(&topo, &workload, failure, LossModel::new(0.01), config);
    let mut strategy = DcrdStrategy::new(DcrdConfig::chaos_hardened());
    let log = runtime.run(&mut strategy);
    let trace = log.trace.as_ref().expect("trace captured");
    assert!(!trace.is_empty(), "chaos run produced no events");
    (trace.digest(), log.clamped_events)
}

const DIGEST_64: u64 = 0xb072_25e5_c9a0_e3a8;
const DIGEST_256: u64 = 0x7692_914d_2b2d_84d0;

#[test]
fn csr_wheel_engine_matches_map_heap_digest_64_brokers() {
    let (digest, clamped) = chaos_digest(64, 6, 20, 20_011);
    if std::env::var("DCRD_PRINT_DIGESTS").is_ok() {
        println!("DIGEST_64 = {digest:#018x}");
        return;
    }
    assert_eq!(
        digest, DIGEST_64,
        "64-broker chaos digest diverged from the pre-refactor map/heap engine"
    );
    assert_eq!(clamped, 0, "chaos scenario clamped past-scheduled events");
}

#[test]
fn csr_wheel_engine_matches_map_heap_digest_256_brokers() {
    let (digest, clamped) = chaos_digest(256, 8, 8, 20_012);
    if std::env::var("DCRD_PRINT_DIGESTS").is_ok() {
        println!("DIGEST_256 = {digest:#018x}");
        return;
    }
    assert_eq!(
        digest, DIGEST_256,
        "256-broker chaos digest diverged from the pre-refactor map/heap engine"
    );
    assert_eq!(clamped, 0, "chaos scenario clamped past-scheduled events");
}
