//! Hierarchical timer wheel: the event queue's backing store.
//!
//! Seven levels of 64 slots each cover `64^7` µs (≈ 51 simulated days) at
//! 1 µs finest granularity; anything farther out parks in a small overflow
//! heap and is promoted when the cursor reaches its window. Insertion and
//! expiry are O(1) amortized — no per-event `O(log n)` sift like the
//! former `BinaryHeap` — and every level keeps a 64-bit occupancy mask so
//! advancing the cursor is a couple of `trailing_zeros` scans instead of a
//! slot-by-slot walk.
//!
//! # Determinism
//!
//! Events pop in `(time, insertion sequence)` order, byte-identical to the
//! binary-heap implementation this replaces. Two properties make that
//! hold:
//!
//! 1. a finest-granularity slot is exactly one microsecond — one
//!    [`SimTime`](crate::SimTime) tick — so every entry in a drained slot
//!    carries the same timestamp, and
//! 2. a drained slot is sorted by insertion sequence before it is served.
//!    The sort is required, not belt-and-braces: a cascade can append an
//!    *older* entry behind a younger one (schedule A at `t=64` from
//!    `now=0` — it parks in level 1 — then B at `t=64` from `now=63` —
//!    level 0; the cascade at `t=64` delivers A after B).
//!
//! # Cancellation
//!
//! [`cancel`](TimerWheel::cancel) is lazy: the entry stays in its slot and
//! is dropped when the cursor reaches it. [`len`](TimerWheel::len) counts
//! cancelled-but-unreaped entries until then.

use std::collections::{BTreeSet, BinaryHeap, VecDeque};

/// log2 of the slots per level.
const SLOT_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Levels in the hierarchy; level `k` slots are `64^k` µs wide.
const LEVELS: usize = 7;

/// One pending timer.
struct Entry<E> {
    at: u64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed so the overflow BinaryHeap acts as a min-heap.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A hierarchical timer wheel over microsecond timestamps.
///
/// Entries pop in `(time, insertion order)` — the exact order of a stable
/// min-heap keyed the same way.
pub struct TimerWheel<E> {
    /// `levels[k][s]`: entries whose time falls in level `k`, slot `s`.
    levels: Vec<Vec<Entry<E>>>,
    /// Per-level bitmask of non-empty slots.
    occupancy: [u64; LEVELS],
    /// Entries beyond the wheel horizon (`64^LEVELS` µs from the cursor).
    overflow: BinaryHeap<Entry<E>>,
    /// Entries at the cursor's exact time, sorted by sequence, served
    /// before the wheel advances again.
    ready: VecDeque<Entry<E>>,
    /// The time of the most recently drained slot. Never exceeds the
    /// earliest pending entry's time.
    cursor: u64,
    /// Next insertion sequence number (the FIFO tie-break).
    next_seq: u64,
    /// Pending entries, including cancelled ones not yet reaped.
    len: usize,
    /// Lazily-cancelled sequence numbers, reaped on pop.
    cancelled: BTreeSet<u64>,
}

impl<E> Default for TimerWheel<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> TimerWheel<E> {
    /// Creates an empty wheel with the cursor at time zero.
    #[must_use]
    pub fn new() -> Self {
        TimerWheel {
            levels: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occupancy: [0; LEVELS],
            overflow: BinaryHeap::new(),
            ready: VecDeque::new(),
            cursor: 0,
            next_seq: 0,
            len: 0,
            cancelled: BTreeSet::new(),
        }
    }

    /// Creates an empty wheel whose ready lane holds `cap` entries without
    /// reallocating.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        let mut w = Self::new();
        w.ready.reserve(cap);
        w
    }

    /// Entries the ready lane can hold without reallocating.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.ready.capacity()
    }

    /// Pending entries (cancelled-but-unreaped ones count until the cursor
    /// passes them).
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no entries are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The time of the most recently served slot.
    #[must_use]
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// Inserts `event` at absolute microsecond `at`, returning its timer
    /// id. `at` earlier than the cursor is treated as "due now" (the
    /// caller is expected to clamp — see `EventQueue::schedule`).
    pub fn insert(&mut self, at: u64, event: E) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        if at <= self.cursor {
            // Due immediately: joins the current tick behind everything
            // already drained (its sequence number is the largest yet).
            self.ready.push_back(Entry {
                at: self.cursor,
                seq,
                event,
            });
            return seq;
        }
        self.place(Entry { at, seq, event });
        seq
    }

    /// Cancels the pending timer `id` (as returned by [`insert`]). Lazy:
    /// the entry is dropped when the cursor reaches its slot. Cancelling
    /// an id that already fired marks nothing and returns `false`.
    ///
    /// [`insert`]: TimerWheel::insert
    pub fn cancel(&mut self, id: u64) -> bool {
        if id >= self.next_seq || !self.cancelled.insert(id) {
            return false;
        }
        true
    }

    /// Earliest pending entry's time, skipping cancelled entries. Does not
    /// advance the cursor.
    #[must_use]
    pub fn peek_time(&self) -> Option<u64> {
        if let Some(e) = self.ready.iter().find(|e| !self.cancelled.contains(&e.seq)) {
            return Some(e.at);
        }
        // Occupied slots at level k ≥ 1 sit strictly beyond the cursor's
        // slot (an entry inside the cursor's slot always files lower), and
        // every level-k entry precedes every level-(k+1) entry (it shares
        // the cursor's level-(k+1) slot; higher entries do not), so the
        // lowest occupied level holds the minimum. Level 0 scans its
        // current slot too: a cascade can file entries at the exact slot
        // the cursor just jumped to.
        for k in 0..LEVELS {
            let cur = self.slot_of(self.cursor, k);
            let mask = if k == 0 {
                mask_at_or_above(self.occupancy[k], cur)
            } else {
                mask_above(self.occupancy[k], cur)
            };
            if mask != 0 {
                let s = mask.trailing_zeros() as usize;
                let min = self.levels[k * SLOTS + s]
                    .iter()
                    .filter(|e| !self.cancelled.contains(&e.seq))
                    .map(|e| (e.at, e.seq))
                    .min();
                if let Some((at, _)) = min {
                    return Some(at);
                }
                // Slot held only cancelled entries; later slots at this or
                // higher levels may still hold live ones. Fall through to a
                // full scan — rare (cancellation-heavy slots only).
                return self.peek_time_slow();
            }
        }
        self.overflow
            .iter()
            .filter(|e| !self.cancelled.contains(&e.seq))
            .map(|e| (e.at, e.seq))
            .min()
            .map(|(at, _)| at)
    }

    /// Full scan fallback for [`peek_time`](TimerWheel::peek_time) when the
    /// first occupied slot turned out to be all-cancelled.
    fn peek_time_slow(&self) -> Option<u64> {
        self.levels
            .iter()
            .flatten()
            .chain(self.overflow.iter())
            .filter(|e| !self.cancelled.contains(&e.seq))
            .map(|e| e.at)
            .min()
    }

    /// Pops the earliest entry in `(time, sequence)` order, reaping
    /// cancelled entries along the way.
    pub fn pop(&mut self) -> Option<(u64, E)> {
        loop {
            match self.ready.pop_front() {
                Some(e) => {
                    self.len -= 1;
                    if self.cancelled.remove(&e.seq) {
                        continue;
                    }
                    return Some((e.at, e.event));
                }
                None => {
                    if !self.advance() {
                        return None;
                    }
                }
            }
        }
    }

    /// Drops all pending entries without moving the cursor.
    pub fn clear(&mut self) {
        for slot in &mut self.levels {
            slot.clear();
        }
        self.occupancy = [0; LEVELS];
        self.overflow.clear();
        self.ready.clear();
        self.cancelled.clear();
        self.len = 0;
    }

    /// Slot index of time `t` at level `k`.
    fn slot_of(&self, t: u64, k: usize) -> usize {
        ((t >> (SLOT_BITS * k as u32)) & (SLOTS as u64 - 1)) as usize
    }

    /// Files an entry with `at > cursor` into its wheel slot or the
    /// overflow heap.
    fn place(&mut self, entry: Entry<E>) {
        let at = entry.at;
        for k in 0..LEVELS {
            // Lowest level whose window (everything above the slot bits)
            // matches the cursor: the entry's slot there is still ahead of
            // the cursor's, so it cascades (or drains) exactly on time.
            if at >> (SLOT_BITS * (k as u32 + 1)) == self.cursor >> (SLOT_BITS * (k as u32 + 1)) {
                let s = self.slot_of(at, k);
                // `k * SLOTS + s` is in bounds by construction (`k < LEVELS`,
                // `s < SLOTS`); the degraded path parks the entry in the
                // overflow heap, which still pops it on time.
                let Some(slot) = self.levels.get_mut(k * SLOTS + s) else {
                    break;
                };
                slot.push(entry);
                if let Some(occ) = self.occupancy.get_mut(k) {
                    *occ |= 1 << s;
                }
                return;
            }
        }
        self.overflow.push(entry);
    }

    /// Advances the cursor to the next occupied time and fills the ready
    /// lane from it (sorted by sequence). Returns `false` when nothing is
    /// pending.
    fn advance(&mut self) -> bool {
        loop {
            // Finest level first: the next occupied 1 µs slot is the next
            // event time exactly. The scan includes the cursor's own slot —
            // a cascade files entries at the exact slot the cursor jumped
            // to, and a served slot can never be re-occupied (entries due
            // at `cursor` go to the ready lane, never into the wheel).
            let cur0 = self.slot_of(self.cursor, 0);
            let occ0 = self.occupancy.first().copied().unwrap_or(0);
            let mask = mask_at_or_above(occ0, cur0);
            if mask != 0 {
                let s = mask.trailing_zeros() as usize;
                if let Some(occ) = self.occupancy.first_mut() {
                    *occ &= !(1 << s);
                }
                let mut drained = self
                    .levels
                    .get_mut(s)
                    .map(std::mem::take)
                    .unwrap_or_default();
                // Equal timestamps by construction; the sequence sort
                // restores global FIFO across direct inserts and cascades.
                drained.sort_unstable_by_key(|e| e.seq);
                self.cursor = (self.cursor & !(SLOTS as u64 - 1)) | s as u64;
                debug_assert!(drained.iter().all(|e| e.at == self.cursor));
                self.ready.extend(drained);
                return true;
            }
            // Cascade: jump to the next occupied slot of the lowest
            // non-empty level and re-file its entries one level down.
            let mut cascaded = false;
            for k in 1..LEVELS {
                let cur = self.slot_of(self.cursor, k);
                let occ_k = self.occupancy.get(k).copied().unwrap_or(0);
                let mask = mask_above(occ_k, cur);
                if mask == 0 {
                    continue;
                }
                let s = mask.trailing_zeros() as usize;
                if let Some(occ) = self.occupancy.get_mut(k) {
                    *occ &= !(1 << s);
                }
                let shift = SLOT_BITS * k as u32;
                // Move the cursor to the slot's start (zeroing the bits
                // below it) — still at or before every pending entry.
                self.cursor =
                    (self.cursor & !((1u64 << (shift + SLOT_BITS)) - 1)) | ((s as u64) << shift);
                let refile = self
                    .levels
                    .get_mut(k * SLOTS + s)
                    .map(std::mem::take)
                    .unwrap_or_default();
                for entry in refile {
                    debug_assert!(entry.at >= self.cursor);
                    self.place(entry);
                }
                cascaded = true;
                break;
            }
            if cascaded {
                continue;
            }
            // Wheel exhausted: promote the earliest overflow window.
            let Some(min) = self.overflow.peek().map(|e| e.at) else {
                return false;
            };
            let top = SLOT_BITS * LEVELS as u32;
            let base = min & !((1u64 << top) - 1);
            self.cursor = self.cursor.max(base);
            while self
                .overflow
                .peek()
                .is_some_and(|e| e.at >> top == self.cursor >> top)
            {
                let Some(e) = self.overflow.pop() else {
                    break;
                };
                self.place(e);
            }
        }
    }
}

impl<E> std::fmt::Debug for TimerWheel<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimerWheel")
            .field("cursor", &self.cursor)
            .field("len", &self.len)
            .field("cancelled", &self.cancelled.len())
            .finish()
    }
}

/// Bits of `occ` strictly above bit `bit` (empty mask for bit 63).
fn mask_above(occ: u64, bit: usize) -> u64 {
    if bit >= SLOTS - 1 {
        0
    } else {
        occ & (!0u64 << (bit + 1))
    }
}

/// Bits of `occ` at or above bit `bit`.
fn mask_at_or_above(occ: u64, bit: usize) -> u64 {
    occ & (!0u64 << bit)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(w: &mut TimerWheel<u32>) -> Vec<(u64, u32)> {
        std::iter::from_fn(|| w.pop()).collect()
    }

    #[test]
    fn pops_in_time_then_insertion_order() {
        let mut w = TimerWheel::new();
        w.insert(30, 3);
        w.insert(10, 1);
        w.insert(20, 2);
        assert_eq!(drain(&mut w), vec![(10, 1), (20, 2), (30, 3)]);
    }

    #[test]
    fn same_tick_pops_fifo() {
        let mut w = TimerWheel::new();
        for i in 0..100 {
            w.insert(5_000, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| w.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cascade_preserves_insertion_order_within_a_tick() {
        // A parks in level 1 (t=64 seen from cursor 0); B goes straight to
        // level 0 (t=64 seen from cursor 63). The cascade at t=64 must
        // still serve A (older) first.
        let mut w = TimerWheel::new();
        w.insert(64, 1); // level 1
        w.insert(63, 0);
        assert_eq!(w.pop(), Some((63, 0))); // cursor now 63
        w.insert(64, 2); // level 0, younger than the parked entry
        assert_eq!(w.pop(), Some((64, 1)));
        assert_eq!(w.pop(), Some((64, 2)));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn entries_due_now_join_the_current_tick_in_order() {
        let mut w = TimerWheel::new();
        w.insert(10, 1);
        w.insert(10, 2);
        assert_eq!(w.pop(), Some((10, 1)));
        // Scheduled "now" mid-tick: runs after everything already due.
        w.insert(10, 3);
        w.insert(5, 4); // past: treated as due now
        assert_eq!(w.pop(), Some((10, 2)));
        assert_eq!(w.pop(), Some((10, 3)));
        assert_eq!(w.pop(), Some((10, 4)));
    }

    #[test]
    fn spans_every_level_and_overflow() {
        let mut w = TimerWheel::new();
        // One entry per level width, plus one beyond the horizon.
        let mut times: Vec<u64> = (0..LEVELS as u32).map(|k| 3 << (SLOT_BITS * k)).collect();
        times.push(1 << (SLOT_BITS * LEVELS as u32)); // overflow
        times.push((1 << (SLOT_BITS * LEVELS as u32)) + 7); // same window
        for (i, &t) in times.iter().enumerate() {
            w.insert(t, i as u32);
        }
        let popped = drain(&mut w);
        let expect: Vec<(u64, u32)> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, i as u32))
            .collect();
        assert_eq!(popped, expect);
    }

    #[test]
    fn cancellation_is_lazy_but_effective() {
        let mut w = TimerWheel::new();
        let a = w.insert(100, 1);
        let b = w.insert(100, 2);
        let c = w.insert(200, 3);
        assert_eq!(w.len(), 3);
        assert!(w.cancel(b));
        assert!(!w.cancel(b), "double-cancel reports false");
        assert!(!w.cancel(999), "unknown id reports false");
        assert_eq!(w.len(), 3, "lazy: unreaped entry still counted");
        assert_eq!(w.peek_time(), Some(100));
        assert_eq!(w.pop(), Some((100, 1)));
        assert_eq!(w.pop(), Some((200, 3)), "cancelled entry skipped");
        assert_eq!(w.pop(), None);
        let _ = (a, c);
    }

    #[test]
    fn cancelling_a_whole_slot_peeks_past_it() {
        let mut w = TimerWheel::new();
        let a = w.insert(50, 1);
        w.insert(70, 2);
        assert!(w.cancel(a));
        assert_eq!(w.peek_time(), Some(70));
        assert_eq!(w.pop(), Some((70, 2)));
    }

    #[test]
    fn peek_does_not_disturb_order() {
        let mut w = TimerWheel::new();
        w.insert(1_000_000, 9); // level 3 territory
        assert_eq!(w.peek_time(), Some(1_000_000));
        w.insert(500, 1);
        assert_eq!(w.peek_time(), Some(500));
        assert_eq!(drain(&mut w), vec![(500, 1), (1_000_000, 9)]);
    }

    #[test]
    fn clear_keeps_cursor() {
        let mut w = TimerWheel::new();
        w.insert(10, 1);
        w.pop();
        w.insert(20, 2);
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.cursor(), 10);
        w.insert(15, 3);
        assert_eq!(w.pop(), Some((15, 3)));
    }

    #[test]
    fn interleaved_cascades_stay_sorted() {
        // Cross several level boundaries with fresh inserts between pops.
        let mut w = TimerWheel::new();
        w.insert(1, 0);
        w.insert(4_100, 1); // level 1
        w.insert(300_000, 2); // level 2
        let mut got = Vec::new();
        while let Some((t, e)) = w.pop() {
            got.push((t, e));
            if e == 0 {
                w.insert(4_100, 3); // same future tick as entry 1
                w.insert(2, 4);
            }
        }
        assert_eq!(
            got,
            vec![(1, 0), (2, 4), (4_100, 1), (4_100, 3), (300_000, 2)]
        );
    }
}
