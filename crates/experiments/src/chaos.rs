//! Chaos study: degradation curves under correlated fault injection.
//!
//! Three one-dimensional sweeps over the chaos models — partition window
//! length, broker crash rate and gray-link fraction — each comparing the
//! chaos-hardened DCRD router (adaptive timeouts + circuit breaker) against
//! the paper's fixed-timeout DCRD and the R-Tree baseline on **identical**
//! repetitions (same topology, workload, failures and chaos schedule).
//!
//! Every simulation in the study runs with the online invariant auditor
//! enabled; [`ChaosReport::total_audit_violations`] pools the verdict. A
//! healthy implementation reports zero across the whole sweep.

use dcrd_core::DcrdConfig;
use dcrd_metrics::report::{FigureSeries, SeriesPoint};
use dcrd_metrics::AggregateMetrics;

use crate::runner::{run_labeled, StrategyKind};
use crate::scenario::{CrashSpec, GraySpec, PartitionSpec, Quality, Scenario, ScenarioBuilder};

/// Partition-window sweep in seconds (30 % of brokers cut off, one cut per
/// minute).
pub const PARTITION_WINDOW_SWEEP: [u64; 4] = [5, 10, 20, 30];
/// Per-broker per-epoch crash-probability sweep.
pub const CRASH_RATE_SWEEP: [f64; 4] = [0.0, 0.005, 0.01, 0.02];
/// Gray-link fraction sweep.
pub const GRAY_FRACTION_SWEEP: [f64; 4] = [0.0, 0.1, 0.2, 0.3];

/// The full chaos study: one degradation series per chaos dimension plus
/// the pooled auditor verdict.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// `chaos-partition`, `chaos-crashes` and `chaos-gray`, in that order.
    pub series: Vec<FigureSeries>,
    /// Invariant violations summed over every run of the study.
    pub total_audit_violations: u64,
}

fn base(quality: Quality) -> ScenarioBuilder {
    ScenarioBuilder::new()
        .nodes(20)
        .degree(5)
        .failure_probability(0.02)
        .quality(quality)
        .audit(true)
}

/// Runs the three contenders on identical repetitions of one scenario.
fn contenders(scenario: Scenario) -> Vec<AggregateMetrics> {
    let hardened = Scenario {
        dcrd: DcrdConfig::chaos_hardened(),
        ..scenario
    };
    vec![
        run_labeled(&hardened, StrategyKind::Dcrd, "DCRD-hardened"),
        run_labeled(&scenario, StrategyKind::Dcrd, "DCRD-fixed"),
        run_labeled(&scenario, StrategyKind::RTree, "R-Tree"),
    ]
}

/// Degradation vs partition window length (fraction 0.3, period 60 s).
#[must_use]
pub fn chaos_partition(quality: Quality) -> FigureSeries {
    let mut series = FigureSeries::new("chaos-partition", "Partition Window (s)");
    for window in PARTITION_WINDOW_SWEEP {
        let scenario = base(quality)
            .partition(PartitionSpec {
                fraction: 0.3,
                window_secs: window,
                period_secs: 60,
            })
            .build();
        series.points.push(SeriesPoint {
            x: window as f64,
            strategies: contenders(scenario),
        });
    }
    series
}

/// Degradation vs broker crash rate (mean downtime 3 epochs).
#[must_use]
pub fn chaos_crashes(quality: Quality) -> FigureSeries {
    let mut series = FigureSeries::new("chaos-crashes", "Crash Probability");
    for rate in CRASH_RATE_SWEEP {
        let scenario = base(quality)
            .crashes(CrashSpec {
                rate,
                mean_down_epochs: 3.0,
            })
            .build();
        series.points.push(SeriesPoint {
            x: rate,
            strategies: contenders(scenario),
        });
    }
    series
}

/// Degradation vs gray-link fraction (extra loss 0.3, delay ×2 one way).
#[must_use]
pub fn chaos_gray(quality: Quality) -> FigureSeries {
    let mut series = FigureSeries::new("chaos-gray", "Gray Link Fraction");
    for fraction in GRAY_FRACTION_SWEEP {
        let scenario = base(quality)
            .gray_links(GraySpec {
                fraction,
                extra_loss: 0.3,
                delay_factor: 2.0,
            })
            .build();
        series.points.push(SeriesPoint {
            x: fraction,
            strategies: contenders(scenario),
        });
    }
    series
}

/// Runs all three sweeps and pools the auditor verdict.
#[must_use]
pub fn chaos_report(quality: Quality) -> ChaosReport {
    let series = vec![
        chaos_partition(quality),
        chaos_crashes(quality),
        chaos_gray(quality),
    ];
    let total_audit_violations = series
        .iter()
        .flat_map(|s| &s.points)
        .flat_map(|p| &p.strategies)
        .map(AggregateMetrics::audit_violations)
        .sum();
    ChaosReport {
        series,
        total_audit_violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcrd_metrics::report::MetricKind;

    /// One smoke pass over the partition sweep; the crash and gray sweeps
    /// share all machinery and are exercised by the integration tests.
    #[test]
    fn partition_sweep_has_expected_shape_and_clean_audit() {
        let series = chaos_partition(Quality::Smoke);
        assert_eq!(series.points.len(), PARTITION_WINDOW_SWEEP.len());
        assert_eq!(
            series.strategy_names(),
            ["DCRD-hardened", "DCRD-fixed", "R-Tree"]
        );
        for point in &series.points {
            for agg in &point.strategies {
                assert_eq!(
                    agg.audit_violations(),
                    0,
                    "{} violated invariants at window {}",
                    agg.name(),
                    point.x
                );
            }
        }
        let table = series.render_table(MetricKind::Qos);
        assert!(table.contains("DCRD-hardened"));
    }

    #[test]
    fn sweep_constants_span_expected_ranges() {
        assert!(PARTITION_WINDOW_SWEEP.contains(&30));
        assert_eq!(CRASH_RATE_SWEEP[0], 0.0);
        assert_eq!(GRAY_FRACTION_SWEEP.len(), 4);
    }
}
