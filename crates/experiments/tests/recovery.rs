//! End-to-end recovery guarantees under the crash-restart chaos model.
//!
//! The router-level scripted tests (`dcrd-core/tests/router_script.rs`)
//! pin the custody/NACK mechanics hop by hop; these tests run the whole
//! stack — runtime, chaos scheduler, auditor — and check the promises the
//! recovery design makes to subscribers:
//!
//! * **completeness**: every published `(message, subscriber)` pair is
//!   delivered despite brokers crashing about a third of the time;
//! * **exactly-once**: replay and NACK re-sends never double-deliver —
//!   duplicates die in the dedup window as benign suppressions;
//! * **determinism**: the same seed reproduces the identical delivery
//!   log and journal activity;
//! * **the acceptance comparison**: at the same delay budget, the durable
//!   journal strictly out-delivers the volatile router.

use dcrd_core::{DcrdConfig, DcrdStrategy};
use dcrd_experiments::runner::{
    build_chaos, build_topology, build_workload, run_once, StrategyKind,
};
use dcrd_experiments::scenario::{CrashSpec, Quality, Scenario, ScenarioBuilder};
use dcrd_net::failure::{FailureModel, LinkFailureModel, LinkOutageModel};
use dcrd_net::loss::LossModel;
use dcrd_net::NodeId;
use dcrd_pubsub::audit::AuditConfig;
use dcrd_pubsub::packet::PacketId;
use dcrd_pubsub::runtime::{DeliveryLog, OverlayRuntime, RuntimeConfig};
use dcrd_pubsub::strategy::RunParams;
use dcrd_sim::rng::derive_seed_indexed;
use dcrd_sim::SimTime;
use proptest::prelude::*;

/// The clean-link crash scenario the recovery study sweeps (see
/// `dcrd_experiments::recovery`): crashes are the only loss mechanism.
fn crash_scenario(rate: f64, seed: u64) -> Scenario {
    ScenarioBuilder::new()
        .nodes(8)
        .full_mesh()
        .failure_probability(0.0)
        .loss_rate(0.0)
        .topics(4)
        .quality(Quality::Smoke)
        .audit(true)
        .audit_sequences(true)
        .seed(seed)
        .crashes(CrashSpec {
            rate,
            mean_down_epochs: 1.5,
        })
        .dcrd(DcrdConfig::recovery_hardened())
        .build()
}

/// Drives one repetition through the runtime directly, returning the full
/// delivery log and the strategy (for journal/tracker inspection) rather
/// than the pooled metrics `run_once` reduces to.
fn run_with_log(scenario: &Scenario, rep: u32) -> (DeliveryLog, DcrdStrategy) {
    let topo = build_topology(scenario, rep);
    let workload = build_workload(scenario, &topo, rep);
    let link_seed = derive_seed_indexed(scenario.seed, "failures", u64::from(rep));
    let links = LinkOutageModel::Epoch(LinkFailureModel::new(scenario.pf, link_seed));
    let failure = FailureModel::new(links, None).with_chaos(build_chaos(scenario, rep));
    let config = RuntimeConfig {
        duration: scenario.duration,
        params: RunParams {
            m: scenario.m,
            ack_timeout_factor: scenario.ack_timeout_factor,
            ..RunParams::default()
        },
        seed: derive_seed_indexed(scenario.seed, "runtime", u64::from(rep)),
        monitoring: scenario.monitoring,
        ack_transit: scenario.ack_transit,
        audit: Some(AuditConfig::for_overlay(scenario.nodes, 64).with_sequence_check()),
        ..RuntimeConfig::paper(scenario.duration, 0)
    };
    let runtime = OverlayRuntime::new(
        &topo,
        &workload,
        failure,
        LossModel::new(scenario.pl),
        config,
    );
    let mut strategy = DcrdStrategy::new(scenario.dcrd);
    let log = runtime.run(&mut strategy);
    (log, strategy)
}

/// Acceptance: at crash rate 0.3 — every broker down roughly a third of
/// the run — the audit reports zero sequence gaps and zero duplicate
/// deliveries, and every pair the runtime expected actually arrived.
#[test]
fn heavy_crashes_leave_no_gaps_and_no_duplicates() {
    let scenario = crash_scenario(0.3, 0x0DC2D);
    let (log, strategy) = run_with_log(&scenario, 0);
    let audit = log.audit.as_ref().expect("audit armed");
    assert_eq!(
        audit.total_violations, 0,
        "sequence gaps or duplicates under crashes: {:?}",
        audit.violations
    );
    assert_eq!(
        log.duplicate_deliveries, 0,
        "a duplicate escaped the dedup window"
    );
    let undelivered: Vec<_> = log
        .expectations()
        .filter(|(_, e)| e.delivered.is_none())
        .map(|(k, _)| k)
        .collect();
    assert!(undelivered.is_empty(), "undelivered pairs: {undelivered:?}");
    // The journal actually worked for a living: entries were written and
    // (except the publishers' permanent custody) retired again.
    let stats = strategy.journal().stats();
    assert!(stats.records > 0, "no custody was ever taken");
    assert!(
        stats.replays > 0,
        "a third of the brokers crashing never triggered a replay"
    );
}

/// Benign replay duplicates are suppressed, not delivered — and the
/// auditor counts them separately from genuine protocol violations.
#[test]
fn replay_duplicates_are_suppressed_not_delivered() {
    let scenario = crash_scenario(0.3, 7);
    let (log, _) = run_with_log(&scenario, 0);
    let audit = log.audit.as_ref().expect("audit armed");
    assert_eq!(audit.replay_suppressions, log.suppressed);
    assert_eq!(audit.total_violations, 0);
}

/// Same seed, same everything: delivery outcomes, suppression count and
/// journal activity are bit-for-bit reproducible.
#[test]
fn recovery_runs_are_deterministic() {
    let scenario = crash_scenario(0.25, 42);
    let snapshot = |log: &DeliveryLog, strategy: &DcrdStrategy| {
        let mut pairs: Vec<((PacketId, NodeId), Option<SimTime>)> =
            log.expectations().map(|(k, e)| (k, e.delivered)).collect();
        pairs.sort();
        (
            pairs,
            log.messages_published,
            log.data_sends,
            log.suppressed,
            strategy.journal().stats(),
        )
    };
    let (log_a, strat_a) = run_with_log(&scenario, 0);
    let (log_b, strat_b) = run_with_log(&scenario, 0);
    let (pairs_a, published_a, sends_a, suppressed_a, stats_a) = snapshot(&log_a, &strat_a);
    let (pairs_b, published_b, sends_b, suppressed_b, stats_b) = snapshot(&log_b, &strat_b);
    assert_eq!(pairs_a, pairs_b);
    assert_eq!(published_a, published_b);
    assert_eq!(sends_a, sends_b);
    assert_eq!(suppressed_a, suppressed_b);
    assert_eq!(stats_a, stats_b);
}

/// Acceptance comparison at equal delay budget: the durable journal must
/// strictly out-deliver the volatile chaos-hardened router on the same
/// crash schedule.
#[test]
fn recovery_strictly_beats_volatile_at_acceptance_rate() {
    let scenario = crash_scenario(0.3, 0x0DC2D);
    let volatile = Scenario {
        dcrd: DcrdConfig::chaos_hardened(),
        audit_sequences: false,
        ..scenario
    };
    let with = run_once(&scenario, StrategyKind::Dcrd, 0);
    let without = run_once(&volatile, StrategyKind::Dcrd, 0);
    assert!(
        with.delivery_ratio() > without.delivery_ratio(),
        "recovery {:.4} vs volatile {:.4}",
        with.delivery_ratio(),
        without.delivery_ratio()
    );
    assert_eq!(with.audit_violations(), 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Whatever the seed and (heavy) crash rate, subscribers see their
    /// streams gap-free and duplicate-free.
    #[test]
    fn crash_schedules_never_break_exactly_once(
        seed in 0u64..1_000_000,
        rate in 0.2f64..0.4,
    ) {
        let scenario = crash_scenario(rate, seed);
        let (log, _) = run_with_log(&scenario, 0);
        let audit = log.audit.as_ref().expect("audit armed");
        prop_assert_eq!(
            audit.total_violations,
            0,
            "violations at rate {}: {:?}",
            rate,
            &audit.violations
        );
        prop_assert_eq!(log.duplicate_deliveries, 0);
    }
}
