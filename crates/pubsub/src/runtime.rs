//! The overlay runtime: one deterministic discrete-event run of a routing
//! strategy over a topology with failures and loss.
//!
//! The runtime models exactly the paper's transport (§III, §IV-A):
//!
//! * Every [`Action::Send`] is one link transmission. It vanishes if the
//!   link is in a failed epoch at send time, or with probability `Pl`
//!   (random loss); otherwise it arrives after the link's propagation delay.
//! * On arrival the receiver immediately returns a **hop-by-hop ACK**
//!   (Algorithm 2 line 2), which traverses the same link back and is subject
//!   to the same failure/loss rules.
//! * Strategies learn about losses only through their own timers — the
//!   runtime never tells a sender that a transmission was dropped.
//!
//! The runtime records a complete [`DeliveryLog`]: one expectation per
//! `(message, subscriber)` pair with its deadline and eventual delivery
//! time, plus traffic counters. The metrics crate turns the log into the
//! paper's three metrics.

use dcrd_net::estimate::{analytic_estimates, EwmaMonitor, LinkEstimate, LinkEstimates};
use dcrd_net::failure::FailureModel;
use dcrd_net::gossip::{GossipConfig, GossipOverlay};
use dcrd_net::loss::LossModel;
use dcrd_net::membership::{
    BrokerChurnModel, GroundTruth, MembershipDelta, SwimConfig, SwimDetector,
};
use dcrd_net::paths::{dijkstra, Metric, ShortestPaths};
use dcrd_net::{NodeId, Topology};
use dcrd_sim::rng::rng_for;
use dcrd_sim::{EventQueue, SimDuration, SimTime};
use rand::rngs::SmallRng;

use crate::audit::{AuditConfig, AuditReport, InvariantAuditor, Violation};
use crate::error::{RuntimeError, MAX_RUNTIME_ERRORS};
use crate::hotstate::PacketNodeMap;
use crate::packet::{Packet, PacketId};
use crate::strategy::{Action, Actions, RoutingStrategy, RunParams, SetupContext, TimerKey};
use crate::trace::{Trace, TraceEvent, TxOutcome};
use crate::workload::Workload;

/// How the strategies' link estimates are produced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Monitoring {
    /// Strategies get the analytic steady-state estimates
    /// (`α = link delay`, `γ = (1−Pf)(1−Pl)`) once at setup.
    Analytic,
    /// The runtime probes every link periodically, feeds an EWMA monitor,
    /// and pushes fresh estimates to the strategy every monitoring
    /// interval (the paper's "link monitoring", 5-minute interval).
    Probing {
        /// Interval between probes of each link.
        probe_interval: SimDuration,
        /// EWMA weight of each new probe.
        ewma_weight: f64,
    },
}

/// How long a hop-by-hop ACK takes to reach the sender.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AckTransit {
    /// The sender learns of the reception after one link delay `α` — the
    /// paper's model (§III-D waits exactly `α_Xk` for the ACK, which only
    /// works if the ACK itself takes no extra time). The ACK is still
    /// subject to reverse-direction failure and loss.
    #[default]
    Immediate,
    /// The ACK physically traverses the link back: the sender learns after
    /// `2α`. Use `ack_timeout_factor ≥ 2` with this model.
    RoundTrip,
}

/// How membership deltas emitted by the runtime's failure detector reach
/// the strategy (broker churn only — without churn there is no detector
/// and none of these arms do anything).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Dissemination {
    /// Every delta reaches the strategy the instant the detector emits it
    /// (via [`RoutingStrategy::on_membership`]) — the instantaneous
    /// "global broadcast" idealization all pre-gossip runs used.
    #[default]
    Oracle,
    /// Deltas spread epidemically through a [`GossipOverlay`]: each one
    /// becomes a rumor at its witness broker and reaches the strategy
    /// (via [`RoutingStrategy::on_gossip`]) only once every present
    /// broker has learned it. Partitions stall convergence; anti-entropy
    /// completes it after the partition heals. Rumors that stay
    /// unconverged too long after the control plane reconnects are
    /// flagged as [`Violation::StaleRouteAfterConvergence`].
    Gossip(GossipConfig),
    /// Detector output is dropped on the floor — the ablation arm that
    /// shows what routing state costs when membership changes are never
    /// disseminated at all.
    None,
}

/// How an overloaded broker picks the victim when its bounded service
/// queue exceeds budget ([`RuntimeConfig::queue_limit`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShedPolicy {
    /// Delay-cognizant shedding: drop the queued packet with the least
    /// remaining delay slack — `deadline − (service + best-case remaining
    /// transit)` maximized over its undelivered destinations — so traffic
    /// that is already doomed absorbs the overload and still-satisfiable
    /// packets keep their seats. This extends the paper's delay-cognizance
    /// from path selection to queue management.
    #[default]
    LeastSlack,
    /// Naive tail drop: the newest arrival is shed regardless of slack.
    /// Kept as an ablation; under overload it sheds satisfiable packets
    /// while doomed ones hold seats, which the auditor flags as
    /// [`Violation::UnjustifiedShed`].
    TailDrop,
}

/// Runtime configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuntimeConfig {
    /// How long publishers keep publishing.
    pub duration: SimDuration,
    /// Shared strategy parameters (`m`, ACK timeout factor).
    pub params: RunParams,
    /// Seed for the runtime's random draws (loss, probe outcomes).
    pub seed: u64,
    /// Estimate source for strategies.
    pub monitoring: Monitoring,
    /// ACK propagation model.
    pub ack_transit: AckTransit,
    /// Interval between [`RoutingStrategy::on_monitor`] pushes (paper: 5
    /// minutes). Only used with [`Monitoring::Probing`].
    pub monitor_interval: SimDuration,
    /// Extra simulated time after the last publish during which in-flight
    /// packets may still complete before the run is cut off.
    pub drain_grace: SimDuration,
    /// Hard cap on processed events (safety valve against livelock).
    pub max_events: u64,
    /// Record a full [`Trace`] of transmissions/deliveries/give-ups.
    /// Costs memory proportional to traffic; off by default.
    pub capture_trace: bool,
    /// Per-broker packet processing time. Brokers serve arrivals serially,
    /// so a busy broker queues packets — the congestion the paper mentions
    /// but does not model. `None` (default, the paper's model) processes
    /// instantly.
    pub processing_time: Option<SimDuration>,
    /// Run the online invariant auditor over the transmission stream and
    /// attach its [`AuditReport`] to the log. Off by default.
    pub audit: Option<AuditConfig>,
    /// Bounded per-broker service queue: at most this many packets may wait
    /// for service at one broker (the packet in service is not counted).
    /// Requires [`processing_time`](RuntimeConfig::processing_time); when
    /// the budget is exceeded a packet is shed per
    /// [`shed_policy`](RuntimeConfig::shed_policy). `None` (default) keeps
    /// the unbounded queue of the paper's congestion-free model.
    ///
    /// Note the hop-by-hop ACK fires at arrival, *before* queueing
    /// (Algorithm 2 line 2), so a shed is silent to the upstream sender —
    /// which is exactly why the default policy targets only traffic whose
    /// delay requirement is already unsatisfiable.
    pub queue_limit: Option<usize>,
    /// Victim selection when the bounded queue overflows.
    pub shed_policy: ShedPolicy,
    /// How detector membership deltas reach the strategy (broker churn
    /// only). Default [`Dissemination::Oracle`] keeps every pre-gossip
    /// run byte-identical.
    pub dissemination: Dissemination,
}

impl RuntimeConfig {
    /// A configuration matching the paper's setup for the given publishing
    /// duration and seed.
    #[must_use]
    pub fn paper(duration: SimDuration, seed: u64) -> Self {
        RuntimeConfig {
            duration,
            params: RunParams::default(),
            seed,
            monitoring: Monitoring::Analytic,
            ack_transit: AckTransit::Immediate,
            monitor_interval: SimDuration::from_secs(300),
            drain_grace: SimDuration::from_secs(120),
            max_events: 500_000_000,
            capture_trace: false,
            processing_time: None,
            audit: None,
            queue_limit: None,
            shed_policy: ShedPolicy::default(),
            dissemination: Dissemination::Oracle,
        }
    }
}

/// The fate of one `(message, subscriber)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Expectation {
    /// When the message was published.
    pub published: SimTime,
    /// The subscription's delay requirement.
    pub deadline: SimDuration,
    /// When (if ever) the message reached this subscriber.
    pub delivered: Option<SimTime>,
    /// Whether the strategy explicitly gave up on this pair.
    pub gave_up: bool,
    /// Whether an overloaded broker shed a copy of this message at a point
    /// where this pair's requirement was already unsatisfiable (even
    /// immediate service plus best-case remaining transit would miss the
    /// deadline). Such pairs are excluded from
    /// [`DeliveryLog::in_slack_delivery_ratio`].
    pub shed_doomed: bool,
}

impl Expectation {
    /// Whether the message was delivered within its deadline.
    #[must_use]
    pub fn on_time(&self) -> bool {
        self.delivered
            .is_some_and(|at| at.saturating_since(self.published) <= self.deadline)
    }

    /// `actual delay ÷ deadline` for a delivered message (Fig. 7's x-axis),
    /// or `None` if undelivered.
    #[must_use]
    pub fn lateness_ratio(&self) -> Option<f64> {
        let at = self.delivered?;
        let actual = at.saturating_since(self.published).as_micros() as f64;
        let deadline = self.deadline.as_micros().max(1) as f64;
        Some(actual / deadline)
    }
}

/// The complete record of one run.
#[derive(Debug, Clone, Default)]
pub struct DeliveryLog {
    expectations: PacketNodeMap<Expectation>,
    /// Number of published messages.
    pub messages_published: u64,
    /// Data-packet transmissions attempted (the paper's traffic metric
    /// numerator).
    pub data_sends: u64,
    /// Data transmissions that hit a failed link epoch.
    pub sends_blocked: u64,
    /// Data transmissions randomly lost.
    pub sends_lost: u64,
    /// ACKs that made it back to the sender.
    pub acks_delivered: u64,
    /// Deliver actions for pairs already delivered (Multipath's second
    /// copy, or duplicates born from lost ACKs) — deduplicated, so they
    /// never inflate the ratios.
    pub duplicate_deliveries: u64,
    /// `Send` actions naming a node with no link to the sender. These are
    /// strategy bugs; the runtime drops the send and counts it here instead
    /// of aborting, so an injected fault that trips a latent bug surfaces
    /// as a diagnostic, not a crashed experiment.
    pub invalid_sends: u64,
    /// `Deliver` actions on a node that is not a subscriber of the message
    /// (same diagnostic treatment as `invalid_sends`).
    pub invalid_delivers: u64,
    /// Duplicate copies absorbed by subscriber dedup windows (recovery
    /// mode: crash replay or NACK re-sends racing the original delivery).
    /// Benign by construction.
    pub suppressed: u64,
    /// Total internal runtime inconsistencies survived (see
    /// [`RuntimeError`]); may exceed `errors.len()`.
    pub runtime_errors: u64,
    /// The first [`MAX_RUNTIME_ERRORS`] runtime errors, in detection order.
    pub errors: Vec<RuntimeError>,
    /// Packets shed by overloaded brokers (bounded service queues only).
    pub sheds: u64,
    /// Sheds per broker, indexed by node (empty unless
    /// [`RuntimeConfig::queue_limit`] is set).
    pub sheds_by_node: Vec<u64>,
    /// Sheds whose every undelivered destination was already past help —
    /// the traffic delay-cognizant shedding is *supposed* to drop.
    pub doomed_sheds: u64,
    /// Deepest any broker's bounded service queue got (post-shed, so never
    /// above the configured budget). Zero without a queue limit.
    pub max_queue_depth: usize,
    /// Gossip dissemination only: eager rumor pushes attempted by the
    /// membership gossip overlay (lost and blocked pushes included).
    pub rumors_sent: u64,
    /// Gossip dissemination only: anti-entropy digest-exchange rounds run
    /// by the gossip overlay.
    pub anti_entropy_rounds: u64,
    /// Gossip dissemination only: membership deltas whose rumors finished
    /// their epidemic spread and were applied via
    /// [`RoutingStrategy::on_gossip`].
    pub gossip_deltas_applied: u64,
    /// Gossip dissemination only: rumors transferred by anti-entropy to a
    /// broker the eager push had missed — each one a stale-entry
    /// reconciliation that pure rumor spreading would have left divergent.
    pub stale_reconciliations: u64,
    /// Whether the run hit the event cap and was truncated.
    pub truncated: bool,
    /// Total simulation events processed by the run loop (the macro
    /// benchmark's throughput denominator).
    pub events_processed: u64,
    /// Events whose requested timestamp lay strictly in the past and were
    /// clamped to the clock by the event queue. A correct run reports
    /// zero; anything else is a scheduling caller computing stale
    /// deadlines (also an auditor [`Violation::PastEventClamp`] when the
    /// clamped event was a strategy timer).
    pub clamped_events: u64,
    /// High-water mark of the central event queue — what
    /// [`OverlayRuntime::estimated_queue_len`] must stay at or above for
    /// the pre-sizing to prevent mid-run reallocation.
    pub peak_queue_len: usize,
    /// Full transmission trace (only with `capture_trace`).
    pub trace: Option<Trace>,
    /// Invariant-audit outcome (only with [`RuntimeConfig::audit`]).
    pub audit: Option<AuditReport>,
}

impl DeliveryLog {
    /// Records one survived runtime inconsistency.
    fn note_error(&mut self, err: RuntimeError) {
        self.runtime_errors += 1;
        if self.errors.len() < MAX_RUNTIME_ERRORS {
            self.errors.push(err);
        }
    }

    /// Iterates over all `(message, subscriber)` expectations in ascending
    /// key order.
    pub fn expectations(&self) -> impl Iterator<Item = ((PacketId, NodeId), &Expectation)> {
        self.expectations.iter()
    }

    /// Number of `(message, subscriber)` pairs.
    #[must_use]
    pub fn num_expectations(&self) -> usize {
        self.expectations.len()
    }

    /// The expectation for one `(message, subscriber)` pair.
    #[must_use]
    pub fn expectation(&self, id: PacketId, subscriber: NodeId) -> Option<&Expectation> {
        self.expectations.get(&(id, subscriber))
    }

    /// Fraction of pairs delivered (late deliveries included).
    #[must_use]
    pub fn delivery_ratio(&self) -> f64 {
        if self.expectations.is_empty() {
            return 0.0;
        }
        let hit = self
            .expectations
            .values()
            .filter(|e| e.delivered.is_some())
            .count();
        hit as f64 / self.expectations.len() as f64
    }

    /// Fraction of pairs delivered within their deadline.
    #[must_use]
    pub fn qos_delivery_ratio(&self) -> f64 {
        if self.expectations.is_empty() {
            return 0.0;
        }
        let hit = self.expectations.values().filter(|e| e.on_time()).count();
        hit as f64 / self.expectations.len() as f64
    }

    /// Fraction of *in-slack* pairs delivered: pairs whose requirement was
    /// still satisfiable whenever overload shedding touched them. A pair a
    /// broker shed while it was already doomed (deadline unreachable even
    /// with immediate service and best-case transit) leaves the
    /// denominator; shedding a pair that still had slack keeps it counted
    /// and so shows up as lost delivery. Equals
    /// [`delivery_ratio`](DeliveryLog::delivery_ratio) when nothing was
    /// shed.
    #[must_use]
    pub fn in_slack_delivery_ratio(&self) -> f64 {
        let mut pairs = 0usize;
        let mut hit = 0usize;
        for e in self.expectations.values() {
            if e.shed_doomed && e.delivered.is_none() {
                continue;
            }
            pairs += 1;
            if e.delivered.is_some() {
                hit += 1;
            }
        }
        if pairs == 0 {
            return 0.0;
        }
        hit as f64 / pairs as f64
    }

    /// Data transmissions per `(message, subscriber)` pair — the paper's
    /// "Packets Sent / Subscribers".
    #[must_use]
    pub fn packets_per_subscriber(&self) -> f64 {
        if self.expectations.is_empty() {
            return 0.0;
        }
        self.data_sends as f64 / self.expectations.len() as f64
    }
}

/// A queued packet's remaining delay slack at a broker, in microseconds:
/// `deadline − (now + service + best-case remaining transit)`, maximized
/// over its undelivered destinations. Positive means some destination can
/// still be reached in time. Packets carrying no live expectation (control
/// traffic such as NACKs) price at `i128::MAX` so they are shed only as a
/// last resort — silently dropping recovery traffic costs more than the
/// seat it frees.
fn shed_slack(
    log: &DeliveryLog,
    sp: &ShortestPaths,
    packet: &Packet,
    now: SimTime,
    service: SimDuration,
) -> i128 {
    let eta_base = now.as_micros() as i128 + service.as_micros() as i128;
    let mut best: Option<i128> = None;
    for &d in &packet.destinations {
        let Some(exp) = log.expectations.get(&(packet.id, d)) else {
            continue;
        };
        if exp.delivered.is_some() {
            continue;
        }
        let deadline_at = exp.published.as_micros() as i128 + exp.deadline.as_micros() as i128;
        let slack = match sp.cost_to(d) {
            Some(cost) => deadline_at - eta_base - cost as i128,
            // Unreachable destination: fully doomed for this pair.
            None => i128::MIN / 2,
        };
        best = Some(best.map_or(slack, |b| b.max(slack)));
    }
    best.unwrap_or(i128::MAX)
}

/// Marks the shed packet's undelivered pairs that were already past help
/// (deadline unreachable even with immediate service and best-case
/// transit). Returns `(had_live_pairs, any_still_satisfiable)`.
fn mark_shed_pairs(
    log: &mut DeliveryLog,
    sp: &ShortestPaths,
    packet: &Packet,
    now: SimTime,
    service: SimDuration,
) -> (bool, bool) {
    let eta_base = now.as_micros() as i128 + service.as_micros() as i128;
    let mut had_pairs = false;
    let mut any_sat = false;
    for &d in &packet.destinations {
        let Some(exp) = log.expectations.get_mut(&(packet.id, d)) else {
            continue;
        };
        if exp.delivered.is_some() {
            continue;
        }
        had_pairs = true;
        let deadline_at = exp.published.as_micros() as i128 + exp.deadline.as_micros() as i128;
        let sat = sp
            .cost_to(d)
            .is_some_and(|cost| deadline_at >= eta_base + cost as i128);
        if sat {
            any_sat = true;
        } else {
            exp.shed_doomed = true;
        }
    }
    (had_pairs, any_sat)
}

enum Event {
    Publish {
        topic_index: usize,
        round: u64,
    },
    // Packets ride the queue boxed: the heap's sift operations move
    // entries around, and an 8-byte pointer keeps those moves cheap where
    // an inline `Packet` would drag ~130 bytes through every swap.
    Arrival {
        to: NodeId,
        from: NodeId,
        packet: Box<Packet>,
    },
    Process {
        node: NodeId,
        from: NodeId,
        packet: Box<Packet>,
    },
    AckArrival {
        at: NodeId,
        to: NodeId,
        packet: Box<Packet>,
    },
    Timer {
        node: NodeId,
        key: TimerKey,
    },
    Probe,
    Monitor,
    /// Epoch-boundary sweep for chaos crash-restarts: brokers that came
    /// back up this epoch get their `on_restart` notification.
    ChaosTick {
        epoch: u64,
    },
}

/// The mutable state of one run, threaded through every
/// [`OverlayRuntime::tick`] call: the event queue, the delivery log under
/// construction, the optional chaos/gossip machinery, and the per-broker
/// service/overload bookkeeping. One named struct keeps the per-event hot
/// path a single function the analyzer can anchor on.
struct RunState {
    rng: SmallRng,
    log: DeliveryLog,
    auditor: Option<InvariantAuditor>,
    queue: EventQueue<Event>,
    next_packet_id: u64,
    monitor: Option<EwmaMonitor>,
    churn: Option<BrokerChurnModel>,
    detector: Option<SwimDetector>,
    gossip: Option<GossipOverlay>,
    hard_stop: SimTime,
    out: Actions,
    staging: Vec<Action>,
    node_free: Vec<SimTime>,
    overload: Option<(SimDuration, usize)>,
    pending: Vec<Vec<(NodeId, Box<Packet>)>>,
    in_service: Vec<bool>,
    sp_cache: Vec<Option<ShortestPaths>>,
}

/// Runs one strategy over one topology + workload and returns the delivery
/// log.
///
/// # Example
///
/// A minimal single-hop strategy, wired through a two-broker overlay:
///
/// ```
/// use dcrd_net::failure::{FailureModel, LinkFailureModel};
/// use dcrd_net::loss::LossModel;
/// use dcrd_net::topology::line;
/// use dcrd_net::NodeId;
/// use dcrd_pubsub::packet::Packet;
/// use dcrd_pubsub::runtime::{OverlayRuntime, RuntimeConfig};
/// use dcrd_pubsub::strategy::{Actions, RoutingStrategy, SetupContext, TimerKey};
/// use dcrd_pubsub::topic::{Subscription, TopicId};
/// use dcrd_pubsub::workload::{TopicSpec, Workload};
/// use dcrd_sim::{SimDuration, SimTime};
///
/// struct Direct;
/// impl RoutingStrategy for Direct {
///     fn name(&self) -> &'static str { "direct" }
///     fn setup(&mut self, _: &SetupContext<'_>) {}
///     fn on_publish(&mut self, node: NodeId, p: Packet, _t: SimTime, out: &mut Actions) {
///         let dest = p.destinations[0];
///         out.send(dest, p.forward(node, vec![dest], 0));
///     }
///     fn on_packet(&mut self, node: NodeId, _f: NodeId, p: Packet, _t: SimTime, out: &mut Actions) {
///         if p.destinations.contains(&node) { out.deliver(p.id); }
///     }
///     fn on_ack(&mut self, _: NodeId, _: NodeId, _: &Packet, _: SimTime, _: &mut Actions) {}
///     fn on_timer(&mut self, _: NodeId, _: TimerKey, _: SimTime, _: &mut Actions) {}
/// }
///
/// let topo = line(2, SimDuration::from_millis(10));
/// let workload = Workload::from_topics(vec![TopicSpec {
///     topic: TopicId::new(0),
///     publisher: topo.node(0),
///     interval: SimDuration::from_secs(1),
///     offset: SimDuration::ZERO,
///     subscriptions: vec![Subscription::new(topo.node(1), SimDuration::from_millis(50))],
///     burst: None,
/// }]);
/// let failure = FailureModel::links_only(LinkFailureModel::new(0.0, 1));
/// let config = RuntimeConfig::paper(SimDuration::from_secs(5), 1);
/// let log = OverlayRuntime::new(&topo, &workload, failure, LossModel::new(0.0), config)
///     .run(&mut Direct);
/// assert_eq!(log.delivery_ratio(), 1.0);
/// ```
#[derive(Debug)]
pub struct OverlayRuntime<'a> {
    topology: &'a Topology,
    workload: &'a Workload,
    failure: FailureModel,
    loss: LossModel,
    config: RuntimeConfig,
}

impl<'a> OverlayRuntime<'a> {
    /// Creates a runtime for the given environment.
    #[must_use]
    pub fn new(
        topology: &'a Topology,
        workload: &'a Workload,
        failure: FailureModel,
        loss: LossModel,
        config: RuntimeConfig,
    ) -> Self {
        OverlayRuntime {
            topology,
            workload,
            failure,
            loss,
            config,
        }
    }

    /// Runs `strategy` to completion and returns the delivery log.
    ///
    /// A `Send` to a node that is not a neighbor of the acting node, or a
    /// `Deliver` on a node that is not a subscriber of the message, is a
    /// strategy bug; the runtime drops the action and counts it in
    /// [`DeliveryLog::invalid_sends`] / [`DeliveryLog::invalid_delivers`]
    /// rather than aborting the run.
    pub fn run<S: RoutingStrategy + ?Sized>(&self, strategy: &mut S) -> DeliveryLog {
        let rng = rng_for(self.config.seed, "runtime");
        let mut log = DeliveryLog {
            trace: self.config.capture_trace.then(Trace::new),
            ..DeliveryLog::default()
        };
        let auditor = self.config.audit.map(InvariantAuditor::new);
        let mut queue: EventQueue<Event> = EventQueue::with_capacity(self.estimated_queue_len());
        let next_packet_id: u64 = 0;

        let initial_estimates = self.initial_estimates();
        let monitor = match self.config.monitoring {
            Monitoring::Analytic => None,
            Monitoring::Probing { ewma_weight, .. } => {
                // The prior assumes healthy links with their configured
                // delay: what a broker knows before any measurement.
                let prior_gamma = 1.0;
                let mut mon = EwmaMonitor::new(
                    self.topology.num_edges(),
                    LinkEstimate::new(SimDuration::from_millis(30), prior_gamma),
                    ewma_weight,
                );
                // Give each edge its true delay as the alpha prior (delays
                // are measurable instantly from one successful probe).
                for e in self.topology.edge_ids() {
                    mon.observe(e, Some(self.topology.delay(e)));
                }
                Some(mon)
            }
        };

        {
            // The configured publish duration IS the workload's publish
            // horizon; inject it so strategies (e.g. recovery sweeps) never
            // expect sequence numbers that were never published.
            let params = RunParams {
                horizon: self.config.duration,
                ..self.config.params
            };
            let ctx = SetupContext {
                topology: self.topology,
                estimates: &initial_estimates,
                workload: self.workload,
                failure_oracle: &self.failure,
                params,
            };
            strategy.setup(&ctx);
        }

        // Seed the publish schedule and monitoring ticks.
        for (i, t) in self.workload.topics().iter().enumerate() {
            let first = t.publish_time(0);
            if first.saturating_since(SimTime::ZERO) <= self.config.duration {
                queue.schedule(
                    first,
                    Event::Publish {
                        topic_index: i,
                        round: 0,
                    },
                );
            }
        }
        if let Monitoring::Probing { probe_interval, .. } = self.config.monitoring {
            queue.schedule(SimTime::ZERO + probe_interval, Event::Probe);
            queue.schedule(SimTime::ZERO + self.config.monitor_interval, Event::Monitor);
        }
        // Crash-restart and churn sweeps run at every epoch boundary (1 s,
        // matching the chaos models' epoch) so restarted brokers lose their
        // volatile router state at the moment they come back and the
        // failure detector probes once per epoch.
        if self
            .failure
            .chaos()
            .is_some_and(|c| c.crashes().is_some() || c.churn().is_some())
        {
            queue.schedule(SimTime::from_secs(1), Event::ChaosTick { epoch: 1 });
        }
        // With broker churn, a SWIM-style failure detector turns ground-
        // truth probe outcomes into membership deltas for the strategy.
        // Absent from the start when churn is off, so crash-only runs are
        // byte-identical to their pre-churn behavior.
        let churn: Option<BrokerChurnModel> = self.failure.chaos().and_then(|c| c.churn()).copied();
        let detector = churn.as_ref().map(|ch| {
            SwimDetector::new(
                self.topology.num_nodes(),
                |n| ch.present_in_epoch(n, 0),
                SwimConfig {
                    seed: self.config.seed,
                    ..SwimConfig::default()
                },
            )
        });
        // Gossip dissemination interposes an epidemic overlay between the
        // detector and the strategy; Oracle and None need no state.
        let gossip: Option<GossipOverlay> = match self.config.dissemination {
            Dissemination::Gossip(cfg) if detector.is_some() => {
                Some(GossipOverlay::new(self.topology.num_nodes(), cfg))
            }
            _ => None,
        };

        let hard_stop = SimTime::ZERO + self.config.duration + self.config.drain_grace;
        let out = Actions::new();
        // Recycled across events by `execute` (see there).
        let staging: Vec<Action> = Vec::new();
        let node_free: Vec<SimTime> = vec![SimTime::ZERO; self.topology.num_nodes()];

        // Overload mode (bounded service queues): per-broker FIFO of
        // waiting packets, an in-service flag, and a lazy per-broker
        // shortest-path cache that prices best-case remaining transit when
        // computing shed slack. All Vec-indexed by node: deterministic.
        let overload = match (self.config.processing_time, self.config.queue_limit) {
            (Some(service), Some(limit)) => Some((service, limit)),
            _ => None,
        };
        let mut pending: Vec<Vec<(NodeId, Box<Packet>)>> = Vec::new();
        let mut in_service: Vec<bool> = Vec::new();
        let mut sp_cache: Vec<Option<ShortestPaths>> = Vec::new();
        if overload.is_some() {
            pending.resize_with(self.topology.num_nodes(), Vec::new);
            in_service.resize(self.topology.num_nodes(), false);
            sp_cache.resize_with(self.topology.num_nodes(), || None);
            log.sheds_by_node = vec![0; self.topology.num_nodes()];
        }

        let mut st = RunState {
            rng,
            log,
            auditor,
            queue,
            next_packet_id,
            monitor,
            churn,
            detector,
            gossip,
            hard_stop,
            out,
            staging,
            node_free,
            overload,
            pending,
            in_service,
            sp_cache,
        };
        while let Some((now, event)) = st.queue.pop() {
            if now > st.hard_stop {
                break;
            }
            if st.queue.events_processed() > self.config.max_events {
                st.log.truncated = true;
                break;
            }
            self.tick(&mut st, strategy, now, event);
        }
        let RunState {
            mut log,
            auditor,
            queue,
            gossip,
            ..
        } = st;
        if let Some(overlay) = &gossip {
            log.rumors_sent = overlay.rumors_sent();
            log.anti_entropy_rounds = overlay.anti_entropy_rounds();
            log.gossip_deltas_applied = overlay.deltas_converged();
            log.stale_reconciliations = overlay.stale_reconciliations();
        }
        log.events_processed = queue.events_processed();
        log.clamped_events = queue.clamped();
        log.peak_queue_len = queue.peak_len();
        log.audit = auditor.map(InvariantAuditor::finish);
        log
    }

    /// Processes one event: the body of [`OverlayRuntime::run`]'s event
    /// loop, factored out so the per-event hot path is one named function
    /// the analyzer's `PANIC001` pass anchors its reachability walk on.
    fn tick<S: RoutingStrategy + ?Sized>(
        &self,
        st: &mut RunState,
        strategy: &mut S,
        now: SimTime,
        event: Event,
    ) {
        match event {
            Event::Publish { topic_index, round } => {
                let Some(spec) = self.workload.topics().get(topic_index) else {
                    return; // unreachable: publishes are scheduled per topic
                };
                let id = PacketId::new(st.next_packet_id);
                st.next_packet_id += 1;
                st.log.messages_published += 1;
                // Churn extension: only subscriptions active at publish
                // time receive (and are accounted for) this message.
                let active = spec.active_subscriptions(now);
                for sub in &active {
                    st.log.expectations.insert(
                        (id, sub.subscriber),
                        Expectation {
                            published: now,
                            deadline: sub.deadline,
                            delivered: None,
                            gave_up: false,
                            shed_doomed: false,
                        },
                    );
                }
                if !active.is_empty() {
                    // The publish round doubles as the per-(topic,
                    // publisher) sequence number subscribers use for gap
                    // detection.
                    let packet = Packet::new(
                        id,
                        spec.topic,
                        spec.publisher,
                        now,
                        active.iter().map(|s| s.subscriber).collect(),
                    )
                    .with_seq(round);
                    if let Some(aud) = &mut st.auditor {
                        aud.observe_publish(&packet);
                    }
                    strategy.on_publish(spec.publisher, packet, now, &mut st.out);
                    self.execute(
                        &mut st.out,
                        spec.publisher,
                        now,
                        &mut st.queue,
                        &mut st.rng,
                        &mut st.log,
                        &mut st.auditor,
                        &mut st.staging,
                    );
                }

                let next = spec.publish_time(round + 1);
                if next.saturating_since(SimTime::ZERO) <= self.config.duration {
                    st.queue.schedule(
                        next,
                        Event::Publish {
                            topic_index,
                            round: round + 1,
                        },
                    );
                }
            }
            Event::Arrival { to, from, packet } => {
                // A broker that crashed while the packet was in flight
                // loses it: no ACK, no processing. (The epoch-failure
                // node model only blocks transmissions at send time;
                // the crash model also eats arrivals.)
                if self.failure.chaos().is_some_and(|c| c.node_down(to, now)) {
                    return;
                }
                // Hop-by-hop ACK, generated before processing
                // (Algorithm 2 line 2). Subject to the same link rules.
                let Some(edge) = self.topology.edge_between(to, from) else {
                    st.log.note_error(RuntimeError::ArrivalWithoutLink {
                        from,
                        to,
                        packet: packet.id,
                    });
                    return;
                };
                let blocked = self.failure.edge_blocked(self.topology, edge, now);
                if !blocked
                    && !self.loss.drops(&mut st.rng)
                    && !self.gray_drops(edge, to, &mut st.rng)
                {
                    let ack_at = match self.config.ack_transit {
                        AckTransit::Immediate => now,
                        AckTransit::RoundTrip => now + self.gray_delay(edge, to),
                    };
                    st.queue.schedule(
                        ack_at,
                        Event::AckArrival {
                            at: from,
                            to,
                            packet: packet.clone(),
                        },
                    );
                }
                match (self.config.processing_time, st.overload) {
                    (None, _) => {
                        strategy.on_packet(to, from, *packet, now, &mut st.out);
                        self.execute(
                            &mut st.out,
                            to,
                            now,
                            &mut st.queue,
                            &mut st.rng,
                            &mut st.log,
                            &mut st.auditor,
                            &mut st.staging,
                        );
                    }
                    (Some(service), None) => {
                        // Serial per-broker service: the packet waits
                        // for the broker to free up, then takes
                        // `service` before the routing logic runs.
                        let Some(free) = st.node_free.get_mut(to.index()) else {
                            return; // unreachable: sized to num_nodes
                        };
                        let start = (*free).max(now);
                        let done = start + service;
                        *free = done;
                        st.queue.schedule(
                            done,
                            Event::Process {
                                node: to,
                                from,
                                packet,
                            },
                        );
                    }
                    (Some(_), Some((service, limit))) => {
                        // Bounded queue: enqueue, shed the policy's
                        // victim on overflow, start service if idle.
                        let Some(q) = st.pending.get_mut(to.index()) else {
                            return; // unreachable: sized to num_nodes
                        };
                        q.push((from, packet));
                        if q.len() > limit {
                            let Some(cache) = st.sp_cache.get_mut(to.index()) else {
                                return;
                            };
                            let sp = cache
                                .get_or_insert_with(|| dijkstra(self.topology, to, Metric::Delay));
                            let slacks: Vec<i128> = q
                                .iter()
                                .map(|(_, p)| shed_slack(&st.log, sp, p, now, service))
                                .collect();
                            let victim = match self.config.shed_policy {
                                // Newest arrival, regardless of slack.
                                ShedPolicy::TailDrop => q.len() - 1,
                                // First index of minimum slack: ties
                                // break toward the oldest arrival.
                                ShedPolicy::LeastSlack => {
                                    let mut best = 0;
                                    let mut best_slack = i128::MAX;
                                    for (i, s) in slacks.iter().enumerate() {
                                        if *s < best_slack {
                                            best = i;
                                            best_slack = *s;
                                        }
                                    }
                                    best
                                }
                            };
                            let (_, shed) = q.remove(victim);
                            let kept_doomed = slacks
                                .iter()
                                .enumerate()
                                .any(|(i, s)| i != victim && *s < 0);
                            let (_, any_sat) =
                                mark_shed_pairs(&mut st.log, sp, &shed, now, service);
                            st.log.sheds += 1;
                            if let Some(n) = st.log.sheds_by_node.get_mut(to.index()) {
                                *n += 1;
                            }
                            if !any_sat {
                                st.log.doomed_sheds += 1;
                            }
                            let ev = TraceEvent::Shed {
                                at: now,
                                node: to,
                                packet: shed.id,
                            };
                            if let Some(trace) = &mut st.log.trace {
                                trace.record(ev);
                            }
                            if let Some(aud) = &mut st.auditor {
                                aud.observe(&ev);
                                // Delay-cognizance gate: overload may
                                // only claim traffic that is past help
                                // while doomed packets hold seats.
                                if any_sat && kept_doomed {
                                    aud.flag(Violation::UnjustifiedShed {
                                        packet: shed.id,
                                        node: to,
                                    });
                                }
                            }
                        }
                        let depth = q.len();
                        st.log.max_queue_depth = st.log.max_queue_depth.max(depth);
                        let Some(busy) = st.in_service.get_mut(to.index()) else {
                            return;
                        };
                        if !*busy && !q.is_empty() {
                            let (f, p) = q.remove(0);
                            *busy = true;
                            st.queue.schedule(
                                now + service,
                                Event::Process {
                                    node: to,
                                    from: f,
                                    packet: p,
                                },
                            );
                        }
                    }
                }
            }
            Event::Process { node, from, packet } => {
                // A broker that departed while the packet sat in its
                // service queue never processes it. (Crash-down brokers
                // already dropped the arrival; churn-absent brokers are
                // gone for good, so their queue dies with them.)
                if st.churn.as_ref().is_some_and(|ch| ch.absent_at(node, now)) {
                    if st.overload.is_some() {
                        // Bounded mode: the departed broker's waiting
                        // room dies with it too (churn loss, not an
                        // overload shed).
                        if let Some(q) = st.pending.get_mut(node.index()) {
                            q.clear();
                        }
                        if let Some(busy) = st.in_service.get_mut(node.index()) {
                            *busy = false;
                        }
                    }
                    return;
                }
                strategy.on_packet(node, from, *packet, now, &mut st.out);
                self.execute(
                    &mut st.out,
                    node,
                    now,
                    &mut st.queue,
                    &mut st.rng,
                    &mut st.log,
                    &mut st.auditor,
                    &mut st.staging,
                );
                if let Some((service, _)) = st.overload {
                    // Serve the next waiting packet, FIFO.
                    let Some(q) = st.pending.get_mut(node.index()) else {
                        return; // unreachable: sized to num_nodes
                    };
                    if q.is_empty() {
                        if let Some(busy) = st.in_service.get_mut(node.index()) {
                            *busy = false;
                        }
                    } else {
                        let (f, p) = q.remove(0);
                        st.queue.schedule(
                            now + service,
                            Event::Process {
                                node,
                                from: f,
                                packet: p,
                            },
                        );
                    }
                }
            }
            Event::AckArrival { at, to, packet } => {
                // An ACK addressed to a crash-down sender dies with its
                // in-flight state.
                if self.failure.chaos().is_some_and(|c| c.node_down(at, now)) {
                    return;
                }
                st.log.acks_delivered += 1;
                let ev = TraceEvent::Ack {
                    at: now,
                    from: to,
                    to: at,
                    packet: packet.id,
                };
                if let Some(trace) = &mut st.log.trace {
                    trace.record(ev);
                }
                if let Some(aud) = &mut st.auditor {
                    aud.observe(&ev);
                }
                strategy.on_ack(at, to, &packet, now, &mut st.out);
                self.execute(
                    &mut st.out,
                    at,
                    now,
                    &mut st.queue,
                    &mut st.rng,
                    &mut st.log,
                    &mut st.auditor,
                    &mut st.staging,
                );
            }
            Event::Timer { node, key } => {
                // A departed broker's timers die with it. Crash-down
                // brokers keep their timers (PR 3 semantics: stale
                // timers fire into wiped state and no-op).
                if st.churn.as_ref().is_some_and(|ch| ch.absent_at(node, now)) {
                    return;
                }
                strategy.on_timer(node, key, now, &mut st.out);
                self.execute(
                    &mut st.out,
                    node,
                    now,
                    &mut st.queue,
                    &mut st.rng,
                    &mut st.log,
                    &mut st.auditor,
                    &mut st.staging,
                );
            }
            Event::Probe => {
                let (Monitoring::Probing { probe_interval, .. }, Some(mon)) =
                    (self.config.monitoring, st.monitor.as_mut())
                else {
                    st.log.note_error(RuntimeError::MonitorMissing);
                    return;
                };
                for e in self.topology.edge_ids() {
                    let blocked = self.failure.edge_blocked(self.topology, e, now);
                    let outcome =
                        (!blocked && !self.loss.drops(&mut st.rng)).then(|| self.topology.delay(e));
                    mon.observe(e, outcome);
                }
                if now.saturating_since(SimTime::ZERO) < self.config.duration {
                    st.queue.schedule(now + probe_interval, Event::Probe);
                }
            }
            Event::Monitor => {
                let Some(mon) = st.monitor.as_ref() else {
                    st.log.note_error(RuntimeError::MonitorMissing);
                    return;
                };
                strategy.on_monitor(&mon.estimates(), now);
                if now.saturating_since(SimTime::ZERO) < self.config.duration {
                    st.queue
                        .schedule(now + self.config.monitor_interval, Event::Monitor);
                }
            }
            Event::ChaosTick { epoch } => {
                // Failure detection first: the detector probes the
                // epoch's ground truth and hands any membership deltas
                // to the strategy, so repair and custody handoff are in
                // place before restarts replay and ticks sweep.
                if let (Some(det), Some(ch)) = (st.detector.as_mut(), st.churn.as_ref()) {
                    let deltas = det.tick(epoch, |n| {
                        if ch.departed_in_epoch(n, epoch) {
                            GroundTruth::Departed
                        } else if !ch.present_in_epoch(n, epoch)
                            || self.failure.chaos().is_some_and(|c| c.node_down(n, now))
                        {
                            GroundTruth::Down
                        } else {
                            GroundTruth::Up
                        }
                    });
                    if let Some(overlay) = st.gossip.as_mut() {
                        // Epidemic dissemination: each delta becomes a
                        // rumor at its witness broker. Self-announced
                        // events (joins, leaves, refutations) start at
                        // the node they are about; a confirmed death
                        // needs a live spokesbroker — the lowest-index
                        // up-and-present broker other than the corpse.
                        let chaos = self.failure.chaos();
                        let up = |x: NodeId| !chaos.is_some_and(|c| c.node_down(x, now));
                        for &d in &deltas {
                            let witness = match d {
                                MembershipDelta::ConfirmDead { .. } => {
                                    (0..self.topology.num_nodes())
                                        .map(|i| self.topology.node(i))
                                        .find(|&x| x != d.node() && up(x))
                                        .unwrap_or_else(|| d.node())
                                }
                                _ => d.node(),
                            };
                            overlay.submit(d, witness, epoch);
                        }
                        // Control-plane connectivity: two brokers can
                        // exchange gossip when both are up and no
                        // active partition separates them. Partitions
                        // therefore stall convergence until they heal.
                        let n = self.topology.num_nodes();
                        let split = |a: NodeId, b: NodeId| {
                            chaos.and_then(|c| c.partition()).is_some_and(|p| {
                                p.is_isolated(a, now, n) != p.is_isolated(b, now, n)
                            })
                        };
                        let tick = overlay.tick(epoch, |a, b| up(a) && up(b) && !split(a, b), up);
                        if !tick.converged.is_empty() {
                            strategy.on_gossip(&tick.converged, now);
                        }
                        if let Some(aud) = &mut st.auditor {
                            for s in &tick.stale {
                                aud.flag(Violation::StaleRouteAfterConvergence {
                                    node: s.node,
                                    rounds: s.rounds,
                                });
                            }
                        }
                    } else if self.config.dissemination == Dissemination::Oracle
                        && !deltas.is_empty()
                    {
                        strategy.on_membership(&deltas, now);
                    }
                    // Dissemination::None drops detector output: the
                    // strategy routes on stale membership forever.
                }
                // All restarts first: a broker that came back this epoch
                // replays its custody before any node's housekeeping
                // tick reacts to the new state.
                for i in 0..self.topology.num_nodes() {
                    let node = self.topology.node(i);
                    let restarted = self
                        .failure
                        .chaos()
                        .is_some_and(|c| c.restarted_at_epoch(node, epoch));
                    if restarted {
                        strategy.on_restart(node, now, &mut st.out);
                        self.execute(
                            &mut st.out,
                            node,
                            now,
                            &mut st.queue,
                            &mut st.rng,
                            &mut st.log,
                            &mut st.auditor,
                            &mut st.staging,
                        );
                    }
                }
                // Then one housekeeping tick per live broker (recovery
                // strategies run their gap-detection sweep here). A
                // crashed broker cannot sweep.
                for i in 0..self.topology.num_nodes() {
                    let node = self.topology.node(i);
                    if self.failure.chaos().is_some_and(|c| c.node_down(node, now)) {
                        continue;
                    }
                    strategy.on_tick(node, now, &mut st.out);
                    self.execute(
                        &mut st.out,
                        node,
                        now,
                        &mut st.queue,
                        &mut st.rng,
                        &mut st.log,
                        &mut st.auditor,
                        &mut st.staging,
                    );
                }
                let next = SimTime::from_secs(epoch + 1);
                if next <= st.hard_stop {
                    st.queue
                        .schedule(next, Event::ChaosTick { epoch: epoch + 1 });
                }
            }
        }
    }

    /// Initial event-queue capacity, sized from the workload and topology
    /// instead of a fixed constant: the steady state holds roughly one
    /// arrival + ACK + timer triple per in-flight `(message, subscriber)`
    /// pair plus per-node housekeeping, so large sweeps start near their
    /// working set instead of growing the heap through repeated doublings.
    /// A flash-crowd burst multiplies a topic's publish rate, so the
    /// in-flight working set scales with the largest configured burst —
    /// without this factor the estimate undersized exactly the burst
    /// scenarios the allocs-per-hop gate runs, and the mid-run queue
    /// reallocation was billed to the router.
    #[must_use]
    pub fn estimated_queue_len(&self) -> usize {
        // The timer wheel's slot directory; counted once so tiny runs
        // still start with the ready lane covering a cascade burst.
        const WHEEL_SLOTS: usize = 64 * 7;
        let subscriptions: usize = self
            .workload
            .topics()
            .iter()
            .map(|t| t.subscriptions.len())
            .sum();
        let burst_mult = self
            .workload
            .topics()
            .iter()
            .filter_map(|t| t.burst.as_ref())
            .map(|b| b.multiplier as usize)
            .max()
            .unwrap_or(1)
            .max(1);
        let nodes = self.topology.num_nodes();
        (64 + WHEEL_SLOTS + 4 * nodes + 8 * subscriptions * burst_mult).min(1 << 20)
    }

    fn initial_estimates(&self) -> LinkEstimates {
        match self.config.monitoring {
            Monitoring::Analytic => analytic_estimates(
                self.topology,
                self.failure.link_model().marginal_rate(),
                self.loss.pl(),
            ),
            // Probing runs start from optimistic priors; on_monitor refines.
            Monitoring::Probing { .. } => analytic_estimates(self.topology, 0.0, 0.0),
        }
    }

    /// Whether a transmission sent by `from` over `edge` is eaten by a gray
    /// link's extra directional loss.
    fn gray_drops(&self, edge: dcrd_net::EdgeId, from: NodeId, rng: &mut SmallRng) -> bool {
        self.failure
            .chaos()
            .and_then(|c| c.gray())
            .is_some_and(|g| {
                g.degrades(self.topology, edge, from) && LossModel::new(g.extra_loss()).drops(rng)
            })
    }

    /// The propagation delay for a transmission sent by `from` over `edge`,
    /// inflated in a gray link's degraded direction.
    fn gray_delay(&self, edge: dcrd_net::EdgeId, from: NodeId) -> SimDuration {
        let base = self.topology.delay(edge);
        match self.failure.chaos().and_then(|c| c.gray()) {
            Some(g) if g.degrades(self.topology, edge, from) => base.mul_f64(g.delay_factor()),
            _ => base,
        }
    }

    #[allow(clippy::too_many_arguments)]
    #[allow(clippy::too_many_arguments)]
    fn execute(
        &self,
        out: &mut Actions,
        node: NodeId,
        now: SimTime,
        queue: &mut EventQueue<Event>,
        rng: &mut SmallRng,
        log: &mut DeliveryLog,
        auditor: &mut Option<InvariantAuditor>,
        staging: &mut Vec<Action>,
    ) {
        // Actions may cascade only through scheduled events, so one pass
        // over the sink is complete. The staging buffer is recycled across
        // events — the hot loop would otherwise allocate one Vec per event.
        staging.clear();
        staging.extend(out.drain());
        for action in staging.drain(..) {
            match action {
                Action::Send { to, packet } => {
                    // Churn invariant: a departed broker cannot transmit.
                    // The event gates make this unreachable for a correct
                    // strategy; if it fires anyway, the auditor records a
                    // routing loop through a dead broker and the send dies.
                    if self
                        .failure
                        .chaos()
                        .and_then(|c| c.churn())
                        .is_some_and(|ch| ch.absent_at(node, now))
                    {
                        if let Some(aud) = auditor {
                            aud.flag(Violation::RouteThroughDead {
                                packet: packet.id,
                                node,
                            });
                        }
                        continue;
                    }
                    let Some(edge) = self.topology.edge_between(node, to) else {
                        log.invalid_sends += 1;
                        continue;
                    };
                    log.data_sends += 1;
                    let outcome = if self.failure.edge_blocked(self.topology, edge, now) {
                        log.sends_blocked += 1;
                        TxOutcome::Blocked
                    } else if self.loss.drops(rng) || self.gray_drops(edge, node, rng) {
                        log.sends_lost += 1;
                        TxOutcome::Lost
                    } else {
                        TxOutcome::Arrived
                    };
                    let ev = TraceEvent::Send {
                        at: now,
                        from: node,
                        to,
                        packet: packet.id,
                        destinations: packet.destinations.len() as u32,
                        outcome,
                    };
                    if let Some(trace) = &mut log.trace {
                        trace.record(ev);
                    }
                    if let Some(aud) = auditor {
                        aud.observe(&ev);
                    }
                    if outcome == TxOutcome::Arrived {
                        queue.schedule(
                            now + self.gray_delay(edge, node),
                            Event::Arrival {
                                to,
                                from: node,
                                packet: Box::new(packet),
                            },
                        );
                    }
                }
                Action::Deliver { packet } => {
                    // Churn invariant: no delivery on a departed subscriber.
                    if self
                        .failure
                        .chaos()
                        .and_then(|c| c.churn())
                        .is_some_and(|ch| ch.absent_at(node, now))
                    {
                        if let Some(aud) = auditor {
                            aud.flag(Violation::DeliveryToDeparted { packet, node });
                        }
                        continue;
                    }
                    let Some(exp) = log.expectations.get_mut(&(packet, node)) else {
                        log.invalid_delivers += 1;
                        continue;
                    };
                    if exp.delivered.is_none() {
                        exp.delivered = Some(now);
                    } else {
                        log.duplicate_deliveries += 1;
                    }
                    let ev = TraceEvent::Deliver {
                        at: now,
                        node,
                        packet,
                    };
                    if let Some(trace) = &mut log.trace {
                        trace.record(ev);
                    }
                    if let Some(aud) = auditor {
                        aud.observe(&ev);
                    }
                }
                Action::SetTimer { at, key } => {
                    // The queue clamps a strictly-past instant to `now` and
                    // reports it; a `now + 0` timer is legitimate and does
                    // not trip the clamp. A flagged clamp means a strategy
                    // computed a stale deadline — an auditor violation, not
                    // a silent reorder.
                    if queue.schedule(at, Event::Timer { node, key }) {
                        if let Some(aud) = auditor {
                            aud.flag(Violation::PastEventClamp { node, at, now });
                        }
                    }
                }
                Action::Suppress { packet } => {
                    log.suppressed += 1;
                    let ev = TraceEvent::Suppress {
                        at: now,
                        node,
                        packet,
                    };
                    if let Some(trace) = &mut log.trace {
                        trace.record(ev);
                    }
                    if let Some(aud) = auditor {
                        aud.observe(&ev);
                    }
                }
                Action::GiveUp {
                    packet,
                    destination,
                } => {
                    if let Some(exp) = log.expectations.get_mut(&(packet, destination)) {
                        exp.gave_up = true;
                    }
                    let ev = TraceEvent::GiveUp {
                        at: now,
                        node,
                        packet,
                        destination,
                    };
                    if let Some(trace) = &mut log.trace {
                        trace.record(ev);
                    }
                    if let Some(aud) = auditor {
                        aud.observe(&ev);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::ack_timeout;
    use crate::topic::{Subscription, TopicId};
    use crate::workload::TopicSpec;
    use dcrd_net::failure::LinkFailureModel;
    use dcrd_net::topology::line;

    /// Minimal flooding strategy used to exercise the runtime: forwards
    /// every packet to every neighbor not yet on the path, delivers
    /// locally, no ACK handling.
    struct Flood {
        topology: Option<Topology>,
    }

    impl Flood {
        fn new() -> Self {
            Flood { topology: None }
        }
        fn flood(&self, node: NodeId, packet: &Packet, out: &mut Actions) {
            let topo = self.topology.as_ref().expect("setup ran");
            for &(next, _) in topo.neighbors(node) {
                if !packet.visited(next) && packet.destinations.contains(&next) {
                    out.send(next, packet.forward(node, packet.destinations.clone(), 0));
                }
            }
        }
    }

    impl RoutingStrategy for Flood {
        fn name(&self) -> &'static str {
            "flood"
        }
        fn setup(&mut self, ctx: &SetupContext<'_>) {
            self.topology = Some(ctx.topology.clone());
        }
        fn on_publish(&mut self, node: NodeId, packet: Packet, _now: SimTime, out: &mut Actions) {
            self.flood(node, &packet, out);
        }
        fn on_packet(
            &mut self,
            node: NodeId,
            _from: NodeId,
            packet: Packet,
            _now: SimTime,
            out: &mut Actions,
        ) {
            if packet.destinations.contains(&node) {
                out.deliver(packet.id);
            }
            self.flood(node, &packet, out);
        }
        fn on_ack(&mut self, _: NodeId, _: NodeId, _: &Packet, _: SimTime, _: &mut Actions) {}
        fn on_timer(&mut self, _: NodeId, _: TimerKey, _: SimTime, _: &mut Actions) {}
    }

    fn two_node_workload() -> (Topology, Workload) {
        let topo = line(2, SimDuration::from_millis(10));
        let spec = TopicSpec {
            topic: TopicId::new(0),
            publisher: topo.node(0),
            interval: SimDuration::from_secs(1),
            offset: SimDuration::ZERO,
            subscriptions: vec![Subscription::new(
                topo.node(1),
                SimDuration::from_millis(30),
            )],
            burst: None,
        };
        (topo, Workload::from_topics(vec![spec]))
    }

    #[test]
    fn lossless_two_node_run_delivers_everything() {
        let (topo, wl) = two_node_workload();
        let failure = FailureModel::links_only(LinkFailureModel::new(0.0, 1));
        let config = RuntimeConfig::paper(SimDuration::from_secs(10), 1);
        let rt = OverlayRuntime::new(&topo, &wl, failure, LossModel::new(0.0), config);
        let log = rt.run(&mut Flood::new());
        // Publishes at t=0..=10 inclusive → 11 messages.
        assert_eq!(log.messages_published, 11);
        assert_eq!(log.num_expectations(), 11);
        assert!((log.delivery_ratio() - 1.0).abs() < 1e-12);
        assert!((log.qos_delivery_ratio() - 1.0).abs() < 1e-12);
        assert_eq!(log.data_sends, 11);
        assert!((log.packets_per_subscriber() - 1.0).abs() < 1e-12);
        assert_eq!(log.acks_delivered, 11);
        assert!(!log.truncated);
    }

    #[test]
    fn delivery_time_is_link_delay() {
        let (topo, wl) = two_node_workload();
        let failure = FailureModel::links_only(LinkFailureModel::new(0.0, 1));
        let config = RuntimeConfig::paper(SimDuration::from_secs(1), 1);
        let rt = OverlayRuntime::new(&topo, &wl, failure, LossModel::new(0.0), config);
        let log = rt.run(&mut Flood::new());
        let exp = log
            .expectation(PacketId::new(0), topo.node(1))
            .expect("recorded");
        assert_eq!(exp.delivered, Some(SimTime::from_millis(10)));
        assert!(exp.on_time());
        assert!((exp.lateness_ratio().unwrap() - 10.0 / 30.0).abs() < 1e-9);
    }

    #[test]
    fn total_loss_delivers_nothing() {
        let (topo, wl) = two_node_workload();
        let failure = FailureModel::links_only(LinkFailureModel::new(0.0, 1));
        let config = RuntimeConfig::paper(SimDuration::from_secs(5), 1);
        let rt = OverlayRuntime::new(&topo, &wl, failure, LossModel::new(1.0), config);
        let log = rt.run(&mut Flood::new());
        assert_eq!(log.delivery_ratio(), 0.0);
        assert_eq!(log.sends_lost, log.data_sends);
    }

    #[test]
    fn queue_capacity_estimate_scales_with_workload() {
        let (topo, wl) = two_node_workload();
        let failure = FailureModel::links_only(LinkFailureModel::new(0.0, 1));
        let config = RuntimeConfig::paper(SimDuration::from_secs(5), 1);
        let rt = OverlayRuntime::new(&topo, &wl, failure, LossModel::new(0.0), config);
        let est = rt.estimated_queue_len();
        // At least the floor plus the per-node share, never past the cap.
        assert!(est >= 64 + 4 * 2, "estimate too small: {est}");
        assert!(est <= 1 << 20);
        // A processed run records how many events went through the queue,
        // and the pre-sizing must cover the observed high-water mark.
        let log = rt.run(&mut Flood::new());
        assert!(log.events_processed > 0);
        assert!(
            est >= log.peak_queue_len,
            "estimate {est} below observed peak {}",
            log.peak_queue_len
        );
        assert_eq!(log.clamped_events, 0);
    }

    #[test]
    fn queue_estimate_covers_burst_peak() {
        // A flash crowd multiplies the publish rate 4x during the window;
        // the pre-burst-fix heuristic ignored the multiplier and undersized
        // exactly this shape.
        let topo = line(2, SimDuration::from_millis(10));
        let spec = TopicSpec {
            topic: TopicId::new(0),
            publisher: topo.node(0),
            interval: SimDuration::from_millis(100),
            offset: SimDuration::ZERO,
            subscriptions: vec![Subscription::new(
                topo.node(1),
                SimDuration::from_millis(90),
            )],
            burst: Some(crate::workload::BurstConfig {
                at: SimDuration::from_secs(1),
                len: SimDuration::from_secs(2),
                multiplier: 4,
            }),
        };
        let wl = Workload::from_topics(vec![spec]);
        let failure = FailureModel::links_only(LinkFailureModel::new(0.0, 1));
        let config = RuntimeConfig::paper(SimDuration::from_secs(5), 1);
        let rt = OverlayRuntime::new(&topo, &wl, failure, LossModel::new(0.0), config);
        let est = rt.estimated_queue_len();
        // floor + wheel slots + 4·nodes + 8·subscriptions·burst multiplier.
        assert_eq!(
            est,
            64 + 64 * 7 + 4 * 2 + 8 * 4,
            "burst multiplier must scale the estimate"
        );
        let log = rt.run(&mut Flood::new());
        assert!(
            est >= log.peak_queue_len,
            "estimate {est} below observed burst peak {}",
            log.peak_queue_len
        );
    }

    #[test]
    fn failed_links_block_sends() {
        let (topo, wl) = two_node_workload();
        let failure = FailureModel::links_only(LinkFailureModel::new(1.0, 1));
        let config = RuntimeConfig::paper(SimDuration::from_secs(5), 1);
        let rt = OverlayRuntime::new(&topo, &wl, failure, LossModel::new(0.0), config);
        let log = rt.run(&mut Flood::new());
        assert_eq!(log.delivery_ratio(), 0.0);
        assert_eq!(log.sends_blocked, log.data_sends);
        assert_eq!(log.acks_delivered, 0);
    }

    #[test]
    fn runs_are_deterministic() {
        let (topo, wl) = two_node_workload();
        let failure = FailureModel::links_only(LinkFailureModel::new(0.3, 7));
        let config = RuntimeConfig::paper(SimDuration::from_secs(30), 9);
        let rt = OverlayRuntime::new(&topo, &wl, failure, LossModel::new(0.05), config);
        let a = rt.run(&mut Flood::new());
        let b = rt.run(&mut Flood::new());
        assert_eq!(a.delivery_ratio(), b.delivery_ratio());
        assert_eq!(a.data_sends, b.data_sends);
        assert_eq!(a.sends_blocked, b.sends_blocked);
        assert_eq!(a.sends_lost, b.sends_lost);
    }

    #[test]
    fn intermittent_failures_hurt_delivery_partially() {
        let (topo, wl) = two_node_workload();
        let failure = FailureModel::links_only(LinkFailureModel::new(0.5, 3));
        let config = RuntimeConfig::paper(SimDuration::from_secs(120), 2);
        let rt = OverlayRuntime::new(&topo, &wl, failure, LossModel::new(0.0), config);
        let log = rt.run(&mut Flood::new());
        let ratio = log.delivery_ratio();
        assert!(ratio > 0.3 && ratio < 0.7, "delivery ratio {ratio}");
    }

    #[test]
    fn expectation_accessors() {
        let exp = Expectation {
            published: SimTime::from_secs(1),
            deadline: SimDuration::from_millis(100),
            delivered: Some(SimTime::from_secs(1) + SimDuration::from_millis(150)),
            gave_up: false,
            shed_doomed: false,
        };
        assert!(!exp.on_time());
        assert!((exp.lateness_ratio().unwrap() - 1.5).abs() < 1e-9);
        let undelivered = Expectation {
            delivered: None,
            ..exp
        };
        assert!(!undelivered.on_time());
        assert_eq!(undelivered.lateness_ratio(), None);
    }

    #[test]
    fn ack_timeout_helper_matches_params() {
        let params = RunParams::default();
        assert_eq!(
            ack_timeout(SimDuration::from_millis(40), &params),
            SimDuration::from_millis(41)
        );
    }

    #[test]
    fn round_trip_acks_arrive_after_two_delays() {
        // With the RoundTrip model and factor 1.0, every timer fires before
        // its ACK (2α vs α + slack), so the flood sees no acks in time but
        // the packets still deliver; with factor 2.0 acks win the race.
        let (topo, wl) = two_node_workload();
        let failure = FailureModel::links_only(LinkFailureModel::new(0.0, 1));
        let mut config = RuntimeConfig::paper(SimDuration::from_secs(5), 1);
        config.ack_transit = AckTransit::RoundTrip;
        let rt = OverlayRuntime::new(&topo, &wl, failure, LossModel::new(0.0), config);
        let log = rt.run(&mut Flood::new());
        // ACKs still arrive (Flood ignores them), just later.
        assert_eq!(log.acks_delivered, log.messages_published);
        assert!((log.delivery_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn probing_mode_pushes_monitor_updates() {
        use dcrd_net::estimate::LinkEstimates;

        /// Flood variant that counts monitor pushes and records gamma.
        struct MonitorSpy {
            inner: Flood,
            updates: u32,
            last_gamma: f64,
        }
        impl RoutingStrategy for MonitorSpy {
            fn name(&self) -> &'static str {
                "spy"
            }
            fn setup(&mut self, ctx: &SetupContext<'_>) {
                self.inner.setup(ctx);
            }
            fn on_publish(&mut self, n: NodeId, p: Packet, t: SimTime, o: &mut Actions) {
                self.inner.on_publish(n, p, t, o);
            }
            fn on_packet(&mut self, n: NodeId, f: NodeId, p: Packet, t: SimTime, o: &mut Actions) {
                self.inner.on_packet(n, f, p, t, o);
            }
            fn on_ack(&mut self, _: NodeId, _: NodeId, _: &Packet, _: SimTime, _: &mut Actions) {}
            fn on_timer(&mut self, _: NodeId, _: TimerKey, _: SimTime, _: &mut Actions) {}
            fn on_monitor(&mut self, estimates: &LinkEstimates, _now: SimTime) {
                self.updates += 1;
                self.last_gamma = estimates.get(dcrd_net::EdgeId::new(0)).gamma;
            }
        }

        let (topo, wl) = two_node_workload();
        let failure = FailureModel::links_only(LinkFailureModel::new(0.3, 5));
        let mut config = RuntimeConfig::paper(SimDuration::from_secs(120), 3);
        config.monitoring = Monitoring::Probing {
            probe_interval: SimDuration::from_secs(1),
            ewma_weight: 0.1,
        };
        config.monitor_interval = SimDuration::from_secs(30);
        let rt = OverlayRuntime::new(&topo, &wl, failure, LossModel::new(0.0), config);
        let mut spy = MonitorSpy {
            inner: Flood::new(),
            updates: 0,
            last_gamma: 1.0,
        };
        let _ = rt.run(&mut spy);
        assert!(
            spy.updates >= 3,
            "expected several monitor pushes, got {}",
            spy.updates
        );
        assert!(
            (spy.last_gamma - 0.7).abs() < 0.15,
            "EWMA gamma {} should approach 1 - Pf = 0.7",
            spy.last_gamma
        );
    }

    #[test]
    fn drain_grace_cuts_off_stragglers() {
        // A timer-delayed strategy that wants to deliver *after* the grace
        // window never gets to: the run ends first.
        struct Procrastinator;
        impl RoutingStrategy for Procrastinator {
            fn name(&self) -> &'static str {
                "procrastinator"
            }
            fn setup(&mut self, _: &SetupContext<'_>) {}
            fn on_publish(&mut self, _n: NodeId, p: Packet, now: SimTime, out: &mut Actions) {
                out.set_timer(
                    now + SimDuration::from_secs(3600),
                    TimerKey {
                        packet: p.id,
                        tag: 0,
                    },
                );
            }
            fn on_packet(&mut self, _: NodeId, _: NodeId, _: Packet, _: SimTime, _: &mut Actions) {}
            fn on_ack(&mut self, _: NodeId, _: NodeId, _: &Packet, _: SimTime, _: &mut Actions) {}
            fn on_timer(&mut self, _n: NodeId, _k: TimerKey, _t: SimTime, _o: &mut Actions) {
                panic!("timer beyond the grace window must never fire");
            }
        }
        let (topo, wl) = two_node_workload();
        let failure = FailureModel::links_only(LinkFailureModel::new(0.0, 1));
        let config = RuntimeConfig::paper(SimDuration::from_secs(2), 1);
        let rt = OverlayRuntime::new(&topo, &wl, failure, LossModel::new(0.0), config);
        let log = rt.run(&mut Procrastinator);
        assert_eq!(log.delivery_ratio(), 0.0);
    }

    #[test]
    fn processing_time_delays_delivery() {
        let (topo, wl) = two_node_workload();
        let failure = FailureModel::links_only(LinkFailureModel::new(0.0, 1));
        let mut config = RuntimeConfig::paper(SimDuration::from_secs(1), 1);
        config.processing_time = Some(SimDuration::from_millis(25));
        let rt = OverlayRuntime::new(&topo, &wl, failure, LossModel::new(0.0), config);
        let log = rt.run(&mut Flood::new());
        let exp = log
            .expectation(PacketId::new(0), topo.node(1))
            .expect("recorded");
        // Link delay 10ms + 25ms of service before the strategy delivers.
        assert_eq!(exp.delivered, Some(SimTime::from_millis(35)));
        // Deadline is 30ms, so the processing delay costs the deadline.
        assert!(!exp.on_time());
    }

    #[test]
    fn serial_service_queues_concurrent_arrivals() {
        use crate::topic::{Subscription, TopicId};
        use crate::workload::TopicSpec;
        use dcrd_net::topology::star;

        // Star: hub node 0 subscribed to two topics published by leaves 1
        // and 2, both publishing at t = 0. With 40ms service the second
        // arrival queues behind the first.
        let topo = star(3, SimDuration::from_millis(10));
        let mk = |i: u32, publisher: usize| TopicSpec {
            topic: TopicId::new(i),
            publisher: topo.node(publisher),
            interval: SimDuration::from_secs(10),
            offset: SimDuration::ZERO,
            subscriptions: vec![Subscription::new(topo.node(0), SimDuration::from_secs(1))],
            burst: None,
        };
        let wl = Workload::from_topics(vec![mk(0, 1), mk(1, 2)]);
        let failure = FailureModel::links_only(LinkFailureModel::new(0.0, 1));
        let mut config = RuntimeConfig::paper(SimDuration::from_secs(1), 1);
        config.processing_time = Some(SimDuration::from_millis(40));
        let rt = OverlayRuntime::new(&topo, &wl, failure, LossModel::new(0.0), config);
        let log = rt.run(&mut Flood::new());
        let mut times: Vec<SimTime> = log
            .expectations()
            .filter_map(|(_, e)| e.delivered)
            .collect();
        times.sort();
        assert_eq!(times.len(), 2);
        // First: arrives 10ms, served 10–50ms. Second: arrives 10ms,
        // queues, served 50–90ms.
        assert_eq!(times[0], SimTime::from_millis(50));
        assert_eq!(times[1], SimTime::from_millis(90));
    }

    /// Star overload fixture: `n` leaves each publish one message at t = 0
    /// to the hub (node 0). Links are 10 ms, service 40 ms, so all arrivals
    /// land at t = 10 ms and queue behind one another. `deadlines[i]` is
    /// topic i's hub deadline.
    fn star_overload(deadlines: &[u64]) -> (Topology, Workload) {
        use dcrd_net::topology::star;
        let topo = star(deadlines.len() + 1, SimDuration::from_millis(10));
        let specs = deadlines
            .iter()
            .enumerate()
            .map(|(i, &d)| TopicSpec {
                topic: TopicId::new(i as u32),
                publisher: topo.node(i + 1),
                interval: SimDuration::from_secs(10),
                offset: SimDuration::ZERO,
                subscriptions: vec![Subscription::new(topo.node(0), SimDuration::from_millis(d))],
                burst: None,
            })
            .collect();
        let wl = Workload::from_topics(specs);
        (topo, wl)
    }

    fn overload_config(policy: ShedPolicy) -> RuntimeConfig {
        let mut config = RuntimeConfig::paper(SimDuration::from_secs(1), 1);
        config.processing_time = Some(SimDuration::from_millis(40));
        config.queue_limit = Some(2);
        config.shed_policy = policy;
        config.audit = Some(AuditConfig::default());
        config
    }

    /// Rogue strategy: acts on every publish even when the publishing
    /// broker has churned out of the overlay — exactly the misbehavior the
    /// execute()-side churn gates exist to catch and neutralize.
    struct DeadHand {
        peer: NodeId,
    }

    impl RoutingStrategy for DeadHand {
        fn name(&self) -> &'static str {
            "dead-hand"
        }
        fn setup(&mut self, _ctx: &SetupContext<'_>) {}
        fn on_publish(&mut self, node: NodeId, packet: Packet, _now: SimTime, out: &mut Actions) {
            out.deliver(packet.id);
            out.send(
                self.peer,
                packet.forward(node, packet.destinations.clone(), 0),
            );
        }
        fn on_packet(
            &mut self,
            _node: NodeId,
            _from: NodeId,
            _packet: Packet,
            _now: SimTime,
            _out: &mut Actions,
        ) {
        }
        fn on_ack(
            &mut self,
            _node: NodeId,
            _to: NodeId,
            _packet: &Packet,
            _now: SimTime,
            _out: &mut Actions,
        ) {
        }
        fn on_timer(&mut self, _node: NodeId, _key: TimerKey, _now: SimTime, _out: &mut Actions) {}
    }

    #[test]
    fn churn_gates_flag_rogue_deliver_and_send_from_departed_broker() {
        use dcrd_net::chaos::ChaosModel;
        use dcrd_net::membership::{BrokerChurnModel, ChurnEvent};

        // Find a seed whose schedule removes node 0 (the publisher) mid-run
        // so a publish scheduled in the final third fires while it is
        // absent. Pure hash queries: the scan is cheap and deterministic.
        let horizon = 6u64;
        let churn = (0..256)
            .map(|seed| BrokerChurnModel::new(1.0, horizon, seed))
            .find(|ch| {
                matches!(
                    ch.event(NodeId::new(0)),
                    Some(ChurnEvent::Leave(_) | ChurnEvent::Death(_))
                )
            })
            .expect("some seed departs node 0");

        let topo = line(2, SimDuration::from_millis(10));
        let publisher = topo.node(0);
        let subscriber = topo.node(1);
        let wl = Workload::from_topics(vec![TopicSpec {
            topic: TopicId::new(0),
            publisher,
            // One publish at 5 s — inside the recovery third, after the
            // publisher's departure epoch (middle third of 6 epochs).
            interval: SimDuration::from_secs(60),
            offset: SimDuration::from_secs(5),
            subscriptions: vec![Subscription::new(subscriber, SimDuration::from_secs(1))],
            burst: None,
        }]);
        let failure = FailureModel::links_only(LinkFailureModel::new(0.0, 1))
            .with_chaos(ChaosModel::none().with_churn(churn));
        let mut config = RuntimeConfig::paper(SimDuration::from_secs(horizon), 1);
        config.audit = Some(AuditConfig::default());
        let rt = OverlayRuntime::new(&topo, &wl, failure, LossModel::new(0.0), config);
        let log = rt.run(&mut DeadHand { peer: subscriber });
        let report = log.audit.as_ref().expect("audit enabled");
        assert!(report.violations.iter().any(
            |v| matches!(v, Violation::DeliveryToDeparted { node, .. } if *node == publisher)
        ));
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::RouteThroughDead { node, .. } if *node == publisher)));
        // Both actions died at the gate: nothing was sent or delivered.
        assert_eq!(log.data_sends, 0);
        assert!(log.expectations().all(|(_, e)| e.delivered.is_none()));
    }

    #[test]
    fn least_slack_shedding_claims_only_doomed_traffic() {
        // Topics 0-2 have 1 s deadlines and arrive first, filling the
        // service slot and both queue seats. Topics 3-5 have 15 ms
        // deadlines: already past help on arrival (10 ms transit +
        // 40 ms service > 15 ms), so least-slack sheds exactly them.
        let (topo, wl) = star_overload(&[1000, 1000, 1000, 15, 15, 15]);
        let failure = FailureModel::links_only(LinkFailureModel::new(0.0, 1));
        let rt = OverlayRuntime::new(
            &topo,
            &wl,
            failure,
            LossModel::new(0.0),
            overload_config(ShedPolicy::LeastSlack),
        );
        let log = rt.run(&mut Flood::new());
        // Six arrivals into budget 2 + one in service: three sheds, all of
        // them doomed short-deadline packets.
        assert_eq!(log.sheds, 3);
        assert_eq!(log.doomed_sheds, 3);
        assert_eq!(log.sheds_by_node[0], 3);
        assert!(log.max_queue_depth <= 2, "depth {}", log.max_queue_depth);
        // Every pair that still had slack was delivered.
        assert!((log.in_slack_delivery_ratio() - 1.0).abs() < 1e-12);
        assert!((log.delivery_ratio() - 0.5).abs() < 1e-12);
        // Delay-cognizant sheds are not violations.
        let report = log.audit.as_ref().expect("audit enabled");
        assert!(report.is_clean(), "violations: {:?}", report.violations);
        assert_eq!(report.sheds_observed, 3);
    }

    #[test]
    fn tail_drop_shedding_trips_the_unjustified_shed_audit() {
        // Doomed packets arrive first and hold their seats; tail drop then
        // sheds the satisfiable newcomers — exactly what the delay-
        // cognizance gate exists to catch.
        let (topo, wl) = star_overload(&[15, 15, 15, 1000, 1000, 1000]);
        let failure = FailureModel::links_only(LinkFailureModel::new(0.0, 1));
        let rt = OverlayRuntime::new(
            &topo,
            &wl,
            failure,
            LossModel::new(0.0),
            overload_config(ShedPolicy::TailDrop),
        );
        let log = rt.run(&mut Flood::new());
        assert_eq!(log.sheds, 3);
        let report = log.audit.as_ref().expect("audit enabled");
        assert!(
            report
                .violations
                .iter()
                .any(|v| matches!(v, Violation::UnjustifiedShed { .. })),
            "expected UnjustifiedShed, got {:?}",
            report.violations
        );
        // The naive policy loses satisfiable traffic.
        assert!(log.in_slack_delivery_ratio() < 1.0);
    }

    #[test]
    fn bounded_queue_matches_unbounded_when_never_full() {
        // A generous budget never sheds, and delivery matches the
        // unbounded serial-service path.
        let (topo, wl) = star_overload(&[1000, 1000]);
        let failure = FailureModel::links_only(LinkFailureModel::new(0.0, 1));
        let mut unbounded = overload_config(ShedPolicy::LeastSlack);
        unbounded.queue_limit = None;
        let mut roomy = overload_config(ShedPolicy::LeastSlack);
        roomy.queue_limit = Some(64);
        let a = OverlayRuntime::new(&topo, &wl, failure, LossModel::new(0.0), unbounded)
            .run(&mut Flood::new());
        let b = OverlayRuntime::new(&topo, &wl, failure, LossModel::new(0.0), roomy)
            .run(&mut Flood::new());
        assert_eq!(b.sheds, 0);
        assert_eq!(a.delivery_ratio(), b.delivery_ratio());
        let at: Vec<_> = a.expectations().map(|(_, e)| e.delivered).collect();
        let bt: Vec<_> = b.expectations().map(|(_, e)| e.delivered).collect();
        assert_eq!(at, bt);
        assert!((b.in_slack_delivery_ratio() - b.delivery_ratio()).abs() < 1e-12);
    }

    #[test]
    fn empty_log_ratios_are_zero() {
        let log = DeliveryLog::default();
        assert_eq!(log.delivery_ratio(), 0.0);
        assert_eq!(log.qos_delivery_ratio(), 0.0);
        assert_eq!(log.packets_per_subscriber(), 0.0);
    }

    /// Misbehaving strategy: sends to a node with no shared link and
    /// delivers on a non-subscriber.
    struct Buggy;
    impl RoutingStrategy for Buggy {
        fn name(&self) -> &'static str {
            "buggy"
        }
        fn setup(&mut self, _: &SetupContext<'_>) {}
        fn on_publish(&mut self, node: NodeId, p: Packet, _t: SimTime, out: &mut Actions) {
            // Line of 3: node 0 has no link to node 2.
            out.send(NodeId::new(2), p.forward(node, vec![NodeId::new(2)], 0));
            // The publisher is not a subscriber of its own topic here.
            out.deliver(p.id);
        }
        fn on_packet(&mut self, _: NodeId, _: NodeId, _: Packet, _: SimTime, _: &mut Actions) {}
        fn on_ack(&mut self, _: NodeId, _: NodeId, _: &Packet, _: SimTime, _: &mut Actions) {}
        fn on_timer(&mut self, _: NodeId, _: TimerKey, _: SimTime, _: &mut Actions) {}
    }

    #[test]
    fn invalid_actions_are_counted_not_fatal() {
        let topo = line(3, SimDuration::from_millis(10));
        let spec = TopicSpec {
            topic: TopicId::new(0),
            publisher: topo.node(0),
            interval: SimDuration::from_secs(1),
            offset: SimDuration::ZERO,
            subscriptions: vec![Subscription::new(
                topo.node(2),
                SimDuration::from_millis(100),
            )],
            burst: None,
        };
        let wl = Workload::from_topics(vec![spec]);
        let failure = FailureModel::links_only(LinkFailureModel::new(0.0, 1));
        let config = RuntimeConfig::paper(SimDuration::from_secs(2), 1);
        let rt = OverlayRuntime::new(&topo, &wl, failure, LossModel::new(0.0), config);
        let log = rt.run(&mut Buggy);
        assert_eq!(log.invalid_sends, 3);
        assert_eq!(log.invalid_delivers, 3);
        assert_eq!(log.data_sends, 0);
        assert_eq!(log.delivery_ratio(), 0.0);
    }

    #[test]
    fn crash_down_broker_eats_packets_and_acks() {
        use dcrd_net::chaos::{ChaosModel, CrashRestartModel};

        let (topo, wl) = two_node_workload();
        // pc = 1 with mean 1: node 1 is down every epoch — all arrivals die.
        let chaos = ChaosModel::none().with_crashes(CrashRestartModel::new(1.0, 1.0, 3));
        let failure = FailureModel::links_only(LinkFailureModel::new(0.0, 1)).with_chaos(chaos);
        let config = RuntimeConfig::paper(SimDuration::from_secs(5), 1);
        let rt = OverlayRuntime::new(&topo, &wl, failure, LossModel::new(0.0), config);
        let log = rt.run(&mut Flood::new());
        assert_eq!(log.delivery_ratio(), 0.0);
        assert_eq!(log.acks_delivered, 0);
        // Sends are already blocked at the link because an endpoint is down.
        assert_eq!(log.sends_blocked, log.data_sends);
    }

    #[test]
    fn gray_link_degrades_exactly_one_direction() {
        use dcrd_net::chaos::{ChaosModel, GrayLinkModel};

        let (topo, wl) = two_node_workload();
        let gray = GrayLinkModel::new(1.0, 1.0, 1.0, 4);
        let edge = topo.edge_between(topo.node(0), topo.node(1)).unwrap();
        let data_degraded = gray.degrades(&topo, edge, topo.node(0));
        let chaos = ChaosModel::none().with_gray(gray);
        let failure = FailureModel::links_only(LinkFailureModel::new(0.0, 1)).with_chaos(chaos);
        let config = RuntimeConfig::paper(SimDuration::from_secs(5), 1);
        let rt = OverlayRuntime::new(&topo, &wl, failure, LossModel::new(0.0), config);
        let log = rt.run(&mut Flood::new());
        if data_degraded {
            // Publisher→subscriber is the bad way: nothing gets through.
            assert_eq!(log.delivery_ratio(), 0.0);
            assert_eq!(log.sends_lost, log.data_sends);
        } else {
            // Only the ACK direction is degraded: data flows, ACKs die.
            assert!((log.delivery_ratio() - 1.0).abs() < 1e-12);
            assert_eq!(log.acks_delivered, 0);
        }
    }

    #[test]
    fn audit_attaches_clean_report_on_healthy_run() {
        let (topo, wl) = two_node_workload();
        let failure = FailureModel::links_only(LinkFailureModel::new(0.0, 1));
        let mut config = RuntimeConfig::paper(SimDuration::from_secs(5), 1);
        config.audit = Some(AuditConfig::default());
        let rt = OverlayRuntime::new(&topo, &wl, failure, LossModel::new(0.0), config);
        let log = rt.run(&mut Flood::new());
        let report = log.audit.as_ref().expect("audit enabled");
        assert!(report.is_clean());
        // Every send, ACK and delivery was observed: 6 events per message.
        assert!(report.events_observed >= 3 * log.messages_published);
        assert!((log.delivery_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn restart_notification_fires_after_crash() {
        use dcrd_net::chaos::{ChaosModel, CrashRestartModel};

        /// Flood variant that counts on_restart callbacks.
        struct RestartSpy {
            inner: Flood,
            restarts: u32,
        }
        impl RoutingStrategy for RestartSpy {
            fn name(&self) -> &'static str {
                "restart-spy"
            }
            fn setup(&mut self, ctx: &SetupContext<'_>) {
                self.inner.setup(ctx);
            }
            fn on_publish(&mut self, n: NodeId, p: Packet, t: SimTime, o: &mut Actions) {
                self.inner.on_publish(n, p, t, o);
            }
            fn on_packet(&mut self, n: NodeId, f: NodeId, p: Packet, t: SimTime, o: &mut Actions) {
                self.inner.on_packet(n, f, p, t, o);
            }
            fn on_ack(&mut self, _: NodeId, _: NodeId, _: &Packet, _: SimTime, _: &mut Actions) {}
            fn on_timer(&mut self, _: NodeId, _: TimerKey, _: SimTime, _: &mut Actions) {}
            fn on_restart(&mut self, _node: NodeId, _now: SimTime, _out: &mut Actions) {
                self.restarts += 1;
            }
        }

        let (topo, wl) = two_node_workload();
        let chaos = ChaosModel::none().with_crashes(CrashRestartModel::new(0.3, 2.0, 11));
        let failure = FailureModel::links_only(LinkFailureModel::new(0.0, 1)).with_chaos(chaos);
        let config = RuntimeConfig::paper(SimDuration::from_secs(60), 1);
        let rt = OverlayRuntime::new(&topo, &wl, failure, LossModel::new(0.0), config);
        let mut spy = RestartSpy {
            inner: Flood::new(),
            restarts: 0,
        };
        let _ = rt.run(&mut spy);
        assert!(
            spy.restarts > 0,
            "a 30% crash rate over 60s must produce at least one restart"
        );
    }
}
