//! Arbitrary-byte fuzzing of the wire codec.
//!
//! Four input families keep the generator honest:
//!
//! 1. pure random bytes (exercises the magic/version rejections),
//! 2. valid encodings of random packets (exercises the full Ok path),
//! 3. valid encodings with random byte mutations — flips, truncations,
//!    extensions, and deliberate length-prefix stomps (exercises every
//!    validation branch), and
//! 4. a valid fixed header followed by random tail bytes (gets past the
//!    header so the length-prefixed readers see hostile counts).
//!
//! The oracle asserts three properties on every input:
//!
//! * **no panic** — any failure is a typed [`DecodePacketError`];
//! * **canonical round-trip** — when decoding succeeds, re-encoding the
//!   decoded packet reproduces the input byte-for-byte (the format has no
//!   redundancy, so any divergence is a parser bug);
//! * **no over-allocation** — every decoded collection is small enough
//!   that the input bytes could actually have carried it, so a hostile
//!   length prefix can never have sized an allocation.

use bytes::{BufMut, Bytes, BytesMut};
use dcrd_net::NodeId;
use dcrd_pubsub::codec::{decode_packet, encode_packet, DecodePacketError};
use dcrd_pubsub::packet::{Packet, PacketBody, PacketId, PacketKind};
use dcrd_pubsub::TopicId;
use dcrd_sim::rng::rng_for_indexed;
use dcrd_sim::SimTime;
use rand::rngs::SmallRng;
use rand::Rng;
use std::fmt;

/// Tally of one byte-fuzz run. Every input lands in exactly one bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ByteFuzzReport {
    /// Inputs fed to the decoder.
    pub iterations: u64,
    /// Inputs that decoded successfully (and passed the round-trip and
    /// allocation oracles).
    pub decoded_ok: u64,
    /// Inputs rejected as truncated.
    pub truncated: u64,
    /// Inputs rejected on the magic byte.
    pub bad_magic: u64,
    /// Inputs rejected on the version byte.
    pub bad_version: u64,
    /// Inputs rejected on the packet-kind discriminant.
    pub bad_kind: u64,
    /// Inputs rejected for trailing bytes.
    pub trailing: u64,
    /// Inputs rejected on a non-canonical route-presence flag.
    pub bad_route_flag: u64,
}

impl ByteFuzzReport {
    /// Whether the generator reached every decoder outcome at least once —
    /// a fuzz run that never decodes successfully (or never trips a given
    /// rejection) is not exercising the surface it claims to.
    #[must_use]
    pub fn covered_all_outcomes(&self) -> bool {
        self.decoded_ok > 0
            && self.truncated > 0
            && self.bad_magic > 0
            && self.bad_version > 0
            && self.bad_kind > 0
            && self.trailing > 0
    }
}

impl fmt::Display for ByteFuzzReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} inputs: {} ok, {} truncated, {} bad-magic, {} bad-version, {} bad-kind, {} trailing, {} bad-route-flag",
            self.iterations,
            self.decoded_ok,
            self.truncated,
            self.bad_magic,
            self.bad_version,
            self.bad_kind,
            self.trailing,
            self.bad_route_flag
        )
    }
}

/// Generates a random (valid, in-memory) packet covering data and NACK
/// kinds, optional routes and payloads.
#[must_use]
pub fn random_packet(rng: &mut SmallRng) -> Packet {
    let node = |rng: &mut SmallRng| NodeId::new(rng.gen_range(0..64u32));
    let nodes = |rng: &mut SmallRng, max: usize| -> Vec<NodeId> {
        let n = rng.gen_range(0..=max);
        (0..n).map(|_| node(rng)).collect()
    };
    let kind = if rng.gen_bool(0.3) {
        let n = rng.gen_range(0..8usize);
        PacketKind::Nack {
            subscriber: node(rng),
            missing: (0..n).map(|_| rng.gen_range(0..1000u64)).collect(),
        }
    } else {
        PacketKind::Data
    };
    let payload_len = rng.gen_range(0..48usize);
    let payload: Vec<u8> = (0..payload_len).map(|_| rng.gen()).collect();
    Packet::from_body(
        PacketBody::new(
            PacketId::new(rng.gen()),
            TopicId::new(rng.gen_range(0..32u32)),
            node(rng),
            SimTime::from_micros(rng.gen_range(0..u64::MAX / 2)),
            rng.gen_range(0..10_000),
            Bytes::from(payload),
        ),
        kind,
        nodes(rng, 8),
        nodes(rng, 12).into(),
        rng.gen_bool(0.4).then(|| nodes(rng, 8)),
        rng.gen(),
    )
}

/// Generates one fuzz input from the four families.
#[must_use]
pub fn arbitrary_input(rng: &mut SmallRng) -> Vec<u8> {
    match rng.gen_range(0..10u32) {
        // Pure noise (30%).
        0..=2 => {
            let len = rng.gen_range(0..256usize);
            (0..len).map(|_| rng.gen()).collect()
        }
        // Valid encoding, untouched (20%).
        3 | 4 => encode_packet(&random_packet(rng)).to_vec(),
        // Valid fixed header + random tail (20%): reaches the
        // length-prefixed readers with hostile counts.
        5 | 6 => {
            let mut b = BytesMut::new();
            b.put_u8(0xDC);
            b.put_u8(2);
            let tail = rng.gen_range(0..96usize);
            for _ in 0..tail {
                b.put_u8(rng.gen());
            }
            b.to_vec()
        }
        // Mutated valid encoding (30%).
        _ => {
            let mut bytes = encode_packet(&random_packet(rng)).to_vec();
            match rng.gen_range(0..4u32) {
                // Byte flips.
                0 => {
                    for _ in 0..rng.gen_range(1..=8u32) {
                        if bytes.is_empty() {
                            break;
                        }
                        let i = rng.gen_range(0..bytes.len());
                        bytes[i] ^= 1 << rng.gen_range(0..8u32);
                    }
                }
                // Truncation.
                1 => {
                    let keep = rng.gen_range(0..=bytes.len());
                    bytes.truncate(keep);
                }
                // Extension with garbage.
                2 => {
                    for _ in 0..rng.gen_range(1..32usize) {
                        bytes.push(rng.gen());
                    }
                }
                // Length-prefix stomp: overwrite a random aligned window
                // with 0xFF — the classic attacker-controlled-count shape.
                _ => {
                    if bytes.len() > 4 {
                        let width = if rng.gen_bool(0.5) { 2 } else { 4 };
                        let i = rng.gen_range(0..bytes.len() - width);
                        for b in &mut bytes[i..i + width] {
                            *b = 0xFF;
                        }
                    }
                }
            }
            bytes
        }
    }
}

/// Decodes one input and checks the oracles. Panics (with a description of
/// the breach) on any violated invariant; the caller adds seed context.
fn check_one(data: &[u8], report: &mut ByteFuzzReport) {
    match decode_packet(data) {
        Ok(packet) => {
            report.decoded_ok += 1;
            // No-over-allocation oracle: each decoded element consumed its
            // wire width from the input, so element counts are bounded by
            // the input length. A hostile length prefix that sized any of
            // these collections would break the bound.
            let wire_elems = 4 * (packet.destinations.len() + packet.path.len())
                + packet.route.as_ref().map_or(0, |r| 4 * r.len())
                + packet.payload.len();
            assert!(
                wire_elems <= data.len(),
                "decoded collections claim {wire_elems} content bytes from a {}-byte input",
                data.len()
            );
            if let PacketKind::Nack { missing, .. } = &packet.kind {
                assert!(
                    8 * missing.len() <= data.len(),
                    "NACK decoded {} sequence entries from a {}-byte input",
                    missing.len(),
                    data.len()
                );
            }
            // Canonical round-trip oracle.
            let reencoded = encode_packet(&packet);
            assert!(
                reencoded.as_ref() == data,
                "decode→encode diverged from the input on a {}-byte datagram",
                data.len()
            );
        }
        Err(DecodePacketError::Truncated { .. }) => report.truncated += 1,
        Err(DecodePacketError::BadMagic(_)) => report.bad_magic += 1,
        Err(DecodePacketError::BadVersion(_)) => report.bad_version += 1,
        Err(DecodePacketError::BadKind(_)) => report.bad_kind += 1,
        Err(DecodePacketError::TrailingBytes(_)) => report.trailing += 1,
        Err(DecodePacketError::BadRouteFlag(_)) => report.bad_route_flag += 1,
    }
}

/// Checks the decode oracles on one externally supplied input — the
/// `cargo fuzz` entry point (`fuzz/fuzz_targets/decode_bytes.rs`). The
/// in-tree runner generates its own inputs; this lets a coverage-guided
/// engine supply them instead.
pub fn check_decode(data: &[u8]) {
    let mut report = ByteFuzzReport::default();
    check_one(data, &mut report);
}

/// Feeds `iterations` generated inputs through the decoder.
///
/// # Panics
///
/// Panics on the first violated oracle, naming the `(seed, index)` pair
/// that regenerates the offending input.
#[must_use]
pub fn run_byte_fuzz(seed: u64, iterations: u64) -> ByteFuzzReport {
    let mut report = ByteFuzzReport::default();
    for i in 0..iterations {
        let mut rng = rng_for_indexed(seed, "byte-fuzz", i);
        let input = arbitrary_input(&mut rng);
        let before = report;
        let guard = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut r = before;
            check_one(&input, &mut r);
            r
        }));
        match guard {
            Ok(r) => report = r,
            Err(cause) => {
                let msg = cause
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| cause.downcast_ref::<&str>().copied())
                    .unwrap_or("non-string panic");
                panic!("byte-fuzz failure at seed={seed} index={i}: {msg}");
            }
        }
        report.iterations += 1;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance gate: ≥ 100k arbitrary inputs with zero panics and
    /// zero oracle breaches, reproducible from the printed seed.
    #[test]
    fn decoder_survives_100k_arbitrary_inputs() {
        let seed = 1;
        let report = run_byte_fuzz(seed, 100_000);
        println!("byte-fuzz seed={seed}: {report}");
        assert_eq!(report.iterations, 100_000);
        assert!(
            report.covered_all_outcomes(),
            "generator missed a decoder outcome: {report}"
        );
    }

    #[test]
    fn byte_fuzz_is_deterministic() {
        assert_eq!(run_byte_fuzz(7, 2_000), run_byte_fuzz(7, 2_000));
        assert_ne!(run_byte_fuzz(7, 2_000), run_byte_fuzz(8, 2_000));
    }

    #[test]
    fn valid_family_decodes_and_noise_family_rejects() {
        // Family 3/4 inputs always decode; this pins the generator's
        // families to their intent so a refactor can't silently turn the
        // fuzzer into a rejection-only exerciser.
        let mut rng = dcrd_sim::rng::rng_for(3, "pin");
        let packet = random_packet(&mut rng);
        let mut report = ByteFuzzReport::default();
        check_one(&encode_packet(&packet), &mut report);
        assert_eq!(report.decoded_ok, 1);
    }
}
