//! The distributed recursive computation of `⟨d, r⟩` (§III-B).
//!
//! In a deployment every broker recomputes its parameters whenever a
//! neighbor shares fresh ones, starting from the subscriber announcing
//! `⟨0, 1⟩`. We model this as **synchronous gossip rounds**: each round,
//! every broker rebuilds its sending list and `⟨d, r⟩` from the previous
//! round's neighbor values. The computation reaches a fixed point (values
//! stop changing within tolerance) in a handful of rounds on the paper's
//! topologies; the round cap guards against pathological oscillation.
//!
//! Because the per-node delay requirement is `D_XS = D_PS − shortest
//! delay(P → X)`, the tables are specific to a *(publisher, subscriber)*
//! pair, i.e. to one subscription.

use dcrd_net::estimate::LinkEstimates;
use dcrd_net::paths::{dijkstra, Metric, ShortestPaths};
use dcrd_net::{NodeId, NodeSet, Topology};
use serde::{Deserialize, Serialize};

use crate::config::{DcrdConfig, PropagationConfig};
use crate::ordering::OrderingPolicy;
use crate::params::{Candidate, DrPair};
use crate::reliability::{m_transmission_stats, LinkStats};
use crate::sending_list::{build_sending_list_from_row, node_params};

/// Degree bound for the fused stack-buffer node step; wider rows take the
/// general list-building path.
const FUSED_STACK: usize = 16;

/// Fused live-round step for one broker under `RatioOptimal` ordering:
/// Algorithm 1's filter, Theorem 1's sort, and Eq. 3's fold, entirely on
/// stack buffers. This produces the same result as
/// `build_sending_list_from_row` + `node_params` — same candidate set,
/// same `d = α + dᵢ` / `r = γ·rᵢ`, the sort's unique permutation
/// (`total_cmp` on `d/r`, ties by neighbor id, here as sign-folded bit
/// keys), and the same sequential Eq. 3 fold — so the returned `⟨d, r⟩`
/// is bit-identical while the candidate list itself is never
/// materialized.
///
/// `order` is this node's persistent visit permutation over `row`'s
/// slots, carried across gossip rounds: candidates are gathered in last
/// round's sorted order, so the insertion sort sees nearly-sorted input
/// and its inner loop stays branch-predictable (`⟨d, r⟩` drifts a little
/// every round, but ranks rarely swap). This is *exact*: the gathered
/// multiset is visit-order-independent, the comparator is a strict total
/// order (distinct neighbor ids break every tie), and insertion sort
/// from any starting arrangement yields the unique sorted permutation.
/// On return `order` holds the new sorted member slots followed by the
/// filtered-out slots.
struct FusedRow {
    ids: [u32; FUSED_STACK],
    ds: [f64; FUSED_STACK],
    rs: [f64; FUSED_STACK],
    len: usize,
}

/// The shared gather + filter + sort half of the fused step: member
/// candidates land in `ids`/`ds`/`rs` `[0, len)` in ascending `(d/r, id)`
/// order, and `order` is rewritten for the next round.
#[inline(always)]
fn gather_sorted(
    row: &[(NodeId, LinkStats)],
    params: &[DrPair],
    requirement: f64,
    order: &mut [u8],
) -> FusedRow {
    let mut keys = [0u64; FUSED_STACK];
    let mut ids = [0u32; FUSED_STACK];
    let mut ds = [0.0f64; FUSED_STACK];
    let mut rs = [0.0f64; FUSED_STACK];
    let mut slots = [0u8; FUSED_STACK];
    let mut rejects = [0u8; FUSED_STACK];
    let mut len = 0usize;
    let mut rejected = 0usize;
    for &slot in order.iter() {
        let (nb, link) = row[slot as usize];
        let p = params[nb.index()];
        // Branchless filter: compute and store unconditionally (harmless
        // for failing slots — `∞` arithmetic is well-defined and the slot
        // is overwritten or ignored), advance `len` by the filter bit.
        // Membership flips between rounds would otherwise mispredict.
        let d = link.alpha + p.d;
        let r = link.gamma * p.r;
        let ratio = if r <= 0.0 { f64::INFINITY } else { d / r };
        let bits = ratio.to_bits() as i64;
        keys[len] = (bits ^ ((((bits >> 63) as u64) >> 1) as i64)) as u64 ^ 0x8000_0000_0000_0000;
        ids[len] = nb.index() as u32;
        ds[len] = d;
        rs[len] = r;
        slots[len] = slot;
        rejects[rejected] = slot;
        let pass = p.d < requirement;
        len += pass as usize;
        rejected += !pass as usize;
    }
    for i in 1..len {
        let (key, id, d, r, s) = (keys[i], ids[i], ds[i], rs[i], slots[i]);
        let mut j = i;
        while j > 0 && (keys[j - 1], ids[j - 1]) > (key, id) {
            keys[j] = keys[j - 1];
            ids[j] = ids[j - 1];
            ds[j] = ds[j - 1];
            rs[j] = rs[j - 1];
            slots[j] = slots[j - 1];
            j -= 1;
        }
        keys[j] = key;
        ids[j] = id;
        ds[j] = d;
        rs[j] = r;
        slots[j] = s;
    }
    order[..len].copy_from_slice(&slots[..len]);
    order[len..].copy_from_slice(&rejects[..rejected]);
    FusedRow { ids, ds, rs, len }
}

#[inline]
fn node_step_ratio(
    row: &[(NodeId, LinkStats)],
    params: &[DrPair],
    requirement: f64,
    order: &mut [u8],
) -> DrPair {
    let FusedRow { ds, rs, len, .. } = gather_sorted(row, params, requirement, order);
    let mut numerator = 0.0;
    let mut prefix_delay = 0.0;
    let mut fail_all = 1.0;
    for k in 0..len {
        if ds[k].is_infinite() {
            debug_assert!(rs[k] <= 0.0, "finite-r candidate with infinite d");
            continue;
        }
        prefix_delay += ds[k];
        numerator += prefix_delay * (rs[k] * fail_all);
        fail_all *= 1.0 - rs[k];
    }
    let r = 1.0 - fail_all;
    if r <= 0.0 {
        DrPair::UNREACHABLE
    } else {
        DrPair {
            d: numerator / r,
            r,
        }
    }
}

/// The final-pass variant: materializes the sorted sending list itself,
/// appended to `out`. Identical candidates in the identical order to
/// `build_sending_list_from_row` under `RatioOptimal`.
#[inline]
fn extend_sorted_candidates(
    row: &[(NodeId, LinkStats)],
    params: &[DrPair],
    requirement: f64,
    order: &mut [u8],
    out: &mut Vec<Candidate>,
) {
    let FusedRow { ids, ds, rs, len } = gather_sorted(row, params, requirement, order);
    out.extend((0..len).map(|k| Candidate {
        neighbor: NodeId::new(ids[k]),
        d: ds[k],
        r: rs[k],
    }));
}

/// The converged routing state of every broker toward one subscription.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubscriberTables {
    subscriber: NodeId,
    publisher: NodeId,
    /// Per-node delay requirement `D_XS` in µs (may be ≤ 0 for brokers too
    /// far from the publisher).
    requirements: Vec<f64>,
    /// Per-node sorted sending lists in CSR form: node `v`'s list is
    /// `list_cands[list_offsets[v] .. list_offsets[v + 1]]`. One flat
    /// allocation per table instead of one `Vec` per broker — at 1k
    /// brokers the nested form put millions of small allocations on every
    /// rebuild pass.
    list_offsets: Vec<u32>,
    list_cands: Vec<Candidate>,
    /// Per-node `⟨d, r⟩`.
    params: Vec<DrPair>,
    rounds_used: u32,
    converged: bool,
    /// Monotone control-plane version of this entry: bumped by the owning
    /// strategy on every recomputation so the gossip layer can summarize
    /// and reconcile divergent table state by `(subscription, version)`
    /// digests instead of comparing full tables.
    #[serde(default)]
    version: u64,
}

impl SubscriberTables {
    /// The subscriber these tables route toward.
    #[must_use]
    pub fn subscriber(&self) -> NodeId {
        self.subscriber
    }

    /// The publisher whose deadline anchors the requirements.
    #[must_use]
    pub fn publisher(&self) -> NodeId {
        self.publisher
    }

    /// The sorted sending list of `node` (empty for an unknown node).
    #[must_use]
    pub fn sending_list(&self, node: NodeId) -> &[Candidate] {
        let i = node.index();
        let (Some(&lo), Some(&hi)) = (self.list_offsets.get(i), self.list_offsets.get(i + 1))
        else {
            return &[];
        };
        self.list_cands.get(lo as usize..hi as usize).unwrap_or(&[])
    }

    /// The `⟨d, r⟩` parameters of `node`.
    #[must_use]
    pub fn params(&self, node: NodeId) -> DrPair {
        self.params[node.index()]
    }

    /// The per-node delay requirement `D_XS` in µs.
    #[must_use]
    pub fn requirement(&self, node: NodeId) -> f64 {
        self.requirements[node.index()]
    }

    /// Gossip rounds executed before convergence (or the cap).
    #[must_use]
    pub fn rounds_used(&self) -> u32 {
        self.rounds_used
    }

    /// Whether the computation converged within the round cap.
    #[must_use]
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// The control-plane version of this entry (0 until the owning
    /// strategy stamps its first recomputation).
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Stamps the control-plane version (set by the owning strategy on
    /// every build or repair of this entry).
    pub fn set_version(&mut self, version: u64) {
        self.version = version;
    }
}

fn delta(a: DrPair, b: DrPair) -> (f64, f64) {
    let dd = match (a.d.is_finite(), b.d.is_finite()) {
        (true, true) => (a.d - b.d).abs(),
        (false, false) => 0.0,
        _ => f64::INFINITY,
    };
    (dd, (a.r - b.r).abs())
}

/// Computes the tables for the subscription `(publisher → subscriber)` with
/// end-to-end deadline `deadline_us`, reusing a precomputed shortest-path
/// tree from the publisher.
///
/// # Panics
///
/// Panics if `dist_from_publisher` was not computed from `publisher`, or if
/// `m == 0`.
#[must_use]
#[allow(clippy::too_many_arguments)] // one value per paper parameter; a struct would obscure them
pub fn compute_tables_with_distances(
    topo: &Topology,
    estimates: &LinkEstimates,
    m: u32,
    publisher: NodeId,
    dist_from_publisher: &ShortestPaths,
    subscriber: NodeId,
    deadline_us: f64,
    config: &DcrdConfig,
) -> SubscriberTables {
    let link_stats = link_transmission_stats(topo, estimates, m);
    compute_tables_prepared(
        topo,
        &link_stats,
        publisher,
        dist_from_publisher,
        subscriber,
        deadline_us,
        config,
    )
}

/// Per-edge `m`-transmission statistics for the whole topology, indexed by
/// edge id. Depends only on `(estimates, m)`, so one snapshot serves every
/// subscription of a table rebuild — hoist it out of per-subscription loops.
#[must_use]
pub fn link_transmission_stats(
    topo: &Topology,
    estimates: &LinkEstimates,
    m: u32,
) -> Vec<LinkStats> {
    topo.edge_ids()
        .map(|e| {
            let est = estimates.get(e);
            m_transmission_stats(est.alpha.as_micros() as f64, est.gamma, m)
        })
        .collect()
}

/// [`compute_tables_with_distances`] with the per-edge link statistics
/// precomputed by [`link_transmission_stats`].
///
/// # Panics
///
/// Panics if `dist_from_publisher` was not computed from `publisher`.
#[must_use]
pub fn compute_tables_prepared(
    topo: &Topology,
    link_stats: &[LinkStats],
    publisher: NodeId,
    dist_from_publisher: &ShortestPaths,
    subscriber: NodeId,
    deadline_us: f64,
    config: &DcrdConfig,
) -> SubscriberTables {
    compute_tables_prepared_masked(
        topo,
        link_stats,
        publisher,
        dist_from_publisher,
        subscriber,
        deadline_us,
        config,
        &NodeSet::new(),
    )
}

/// Per-node `(neighbor, link stats)` adjacency minus the absent brokers, in
/// CSR form: one flat pair array plus per-node offsets.
///
/// The snapshot depends only on `(topology, link stats, absent set)` — none
/// of which vary across the subscriptions of one table rebuild — so build
/// it **once per rebuild pass** and share it across every
/// `(publisher, subscriber)` pair. At 1k brokers the per-call construction
/// it replaces dominated rebuild time: thousands of subscription passes
/// each allocating a thousand per-node vectors.
#[derive(Debug, Clone)]
pub struct AdjacencySnapshot {
    /// Node `v`'s row lives at `pairs[offsets[v] .. offsets[v + 1]]`.
    offsets: Vec<u32>,
    /// Flat `(neighbor, link stats)` pairs in topology neighbor order —
    /// the same order the per-call construction produced, which keeps the
    /// `⟨d, r⟩` float operation sequence byte-identical.
    pairs: Vec<(NodeId, LinkStats)>,
}

impl AdjacencySnapshot {
    /// Builds the snapshot for one rebuild pass.
    #[must_use]
    pub fn build(topo: &Topology, link_stats: &[LinkStats], absent: &NodeSet) -> Self {
        let n = topo.num_nodes();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut pairs = Vec::with_capacity(2 * topo.num_edges());
        offsets.push(0);
        for i in 0..n {
            pairs.extend(
                topo.neighbors(NodeId::new(i as u32))
                    .iter()
                    .filter(|&&(nb, _)| !absent.contains(nb))
                    .map(|&(nb, edge)| (nb, link_stats[edge.index()])),
            );
            offsets.push(pairs.len() as u32);
        }
        AdjacencySnapshot { offsets, pairs }
    }

    /// Number of nodes the snapshot covers.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The live `(neighbor, link stats)` row of node `i`.
    #[must_use]
    pub fn row(&self, i: usize) -> &[(NodeId, LinkStats)] {
        &self.pairs[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Total number of live `(neighbor, link stats)` pairs.
    #[must_use]
    pub fn num_pairs(&self) -> usize {
        self.pairs.len()
    }

    /// Shortest α-distance in µs from `source` to every node over the live
    /// rows — the cheapest conditional delay any `⟨d, r⟩` value can ever
    /// reach, since Eq. 2 adds a full link α per hop and Eq. 3's expectation
    /// never undercuts its fastest candidate.
    ///
    /// Rebuild loops compute this once per subscriber (it depends only on
    /// the snapshot and the source) and feed it to
    /// [`compute_tables_snapshot`] as the pruning bound.
    #[must_use]
    pub fn alpha_distances_from(&self, source: NodeId) -> Vec<f64> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let n = self.num_nodes();
        let mut dist = vec![f64::INFINITY; n];
        // Non-negative finite f64 bit patterns order like the values, so
        // the heap can key on raw bits without a float wrapper type.
        let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
        if source.index() < n {
            dist[source.index()] = 0.0;
            heap.push(Reverse((0, source.index() as u32)));
        }
        while let Some(Reverse((dbits, u))) = heap.pop() {
            let d = f64::from_bits(dbits);
            if d > dist[u as usize] {
                continue;
            }
            for &(nb, stats) in self.row(u as usize) {
                if !stats.alpha.is_finite() {
                    continue;
                }
                let nd = d + stats.alpha;
                if nd < dist[nb.index()] {
                    dist[nb.index()] = nd;
                    heap.push(Reverse((nd.to_bits(), nb.index() as u32)));
                }
            }
        }
        dist
    }

    /// For every node, the minimum of `values` over its live neighbors
    /// (`∞` for isolated nodes). One O(E) pass over
    /// [`alpha_distances_from`](Self::alpha_distances_from)`(subscriber)`
    /// turns the per-pair "does any neighbor beat the requirement?"
    /// ellipse scan into an O(1) lookup per node — rebuild loops cache
    /// the result per subscriber and hand it to
    /// [`compute_tables_snapshot`] as the pruning bound.
    #[must_use]
    pub fn neighbor_min(&self, values: &[f64]) -> Vec<f64> {
        (0..self.num_nodes())
            .map(|i| {
                self.row(i)
                    .iter()
                    .fold(f64::INFINITY, |m, &(nb, _)| m.min(values[nb.index()]))
            })
            .collect()
    }
}

/// [`compute_tables_prepared`] over the overlay minus the `absent` brokers
/// (departed or confirmed dead): absent nodes contribute no candidates, get
/// no sending lists, and carry `−∞` requirements. With an empty mask the
/// result is **identical** to the unmasked computation — same float
/// operation order, same freeze schedule — which is what lets incremental
/// repair be oracle-checked against a from-scratch rebuild byte for byte.
///
/// Builds a throwaway [`AdjacencySnapshot`]; rebuild loops that recompute
/// many subscriptions against one absent set should build the snapshot once
/// and call [`compute_tables_snapshot`] instead.
///
/// `dist_from_publisher` should be computed with
/// [`dijkstra_masked`](dcrd_net::paths::dijkstra_masked) over the same
/// absent set so requirements reflect detours around the missing brokers.
///
/// # Panics
///
/// Panics if `dist_from_publisher` was not computed from `publisher`.
#[must_use]
#[allow(clippy::too_many_arguments)] // one value per paper parameter plus the mask
pub fn compute_tables_prepared_masked(
    topo: &Topology,
    link_stats: &[LinkStats],
    publisher: NodeId,
    dist_from_publisher: &ShortestPaths,
    subscriber: NodeId,
    deadline_us: f64,
    config: &DcrdConfig,
    absent: &NodeSet,
) -> SubscriberTables {
    let snapshot = AdjacencySnapshot::build(topo, link_stats, absent);
    let spd = snapshot.alpha_distances_from(subscriber);
    let spd_bound = snapshot.neighbor_min(&spd);
    compute_tables_snapshot(
        &snapshot,
        publisher,
        dist_from_publisher,
        subscriber,
        &spd_bound,
        deadline_us,
        config,
        absent,
    )
}

/// [`compute_tables_prepared_masked`] against a prebuilt
/// [`AdjacencySnapshot`] — the hot entry point for table rebuild loops.
///
/// `spd_bound_from_subscriber` must be
/// [`neighbor_min`](AdjacencySnapshot::neighbor_min) over
/// [`alpha_distances_from`](AdjacencySnapshot::alpha_distances_from)`(subscriber)`
/// on the same snapshot; rebuild loops cache it per subscriber.
///
/// # Panics
///
/// Panics if `dist_from_publisher` was not computed from `publisher`, or
/// if `spd_bound_from_subscriber` does not cover every node.
#[must_use]
#[allow(clippy::too_many_arguments)] // one value per paper parameter plus the mask
pub fn compute_tables_snapshot(
    snapshot: &AdjacencySnapshot,
    publisher: NodeId,
    dist_from_publisher: &ShortestPaths,
    subscriber: NodeId,
    spd_bound_from_subscriber: &[f64],
    deadline_us: f64,
    config: &DcrdConfig,
    absent: &NodeSet,
) -> SubscriberTables {
    let mut ws = TableWorkspace::default();
    compute_tables_snapshot_ws(
        snapshot,
        publisher,
        dist_from_publisher,
        subscriber,
        spd_bound_from_subscriber,
        deadline_us,
        config,
        absent,
        &mut ws,
    )
}

/// Reusable scratch buffers for [`compute_tables_snapshot_ws`]. A rebuild
/// pass computes tables for thousands of (topic, subscriber) pairs against
/// one snapshot; sharing one workspace across those calls replaces ~10
/// allocations (some past the allocator's mmap threshold) per pair with
/// `clear`/`resize` on already-warm buffers.
#[derive(Debug, Default)]
pub struct TableWorkspace {
    list_buf: Vec<Candidate>,
    scratch: Vec<DrPair>,
    stamp: Vec<u32>,
    active: Vec<bool>,
    actives: Vec<u32>,
    frozen_offsets: Vec<u32>,
    frozen_flat: Vec<(NodeId, LinkStats)>,
    /// Total sending-list entries produced by the previous call — the
    /// capacity hint for the next table's candidate buffer.
    cands_estimate: usize,
    /// Per-node persistent visit permutations for the fused step, in CSR
    /// form (`order[order_offsets[i] .. order_offsets[i + 1]]`, row slots
    /// capped at [`FUSED_STACK`]). Any permutation is a valid starting
    /// arrangement, so the buffers survive across pairs — and a prior
    /// pair's converged order is itself a good warm start.
    order: Vec<u8>,
    order_offsets: Vec<u32>,
}

/// [`compute_tables_snapshot`] with caller-owned scratch — the innermost
/// entry point for rebuild loops.
#[must_use]
#[allow(clippy::too_many_arguments)] // one value per paper parameter plus the mask
pub fn compute_tables_snapshot_ws(
    snapshot: &AdjacencySnapshot,
    publisher: NodeId,
    dist_from_publisher: &ShortestPaths,
    subscriber: NodeId,
    spd_bound_from_subscriber: &[f64],
    deadline_us: f64,
    config: &DcrdConfig,
    absent: &NodeSet,
    ws: &mut TableWorkspace,
) -> SubscriberTables {
    assert_eq!(
        dist_from_publisher.source(),
        publisher,
        "distance tree must be rooted at the publisher"
    );
    assert_eq!(
        spd_bound_from_subscriber.len(),
        snapshot.num_nodes(),
        "subscriber distance bound must cover every node"
    );
    let n = snapshot.num_nodes();
    let requirements: Vec<f64> = (0..n)
        .map(|i| {
            let node = NodeId::new(i as u32);
            if absent.contains(node) {
                return f64::NEG_INFINITY;
            }
            match dist_from_publisher.cost_to(node) {
                Some(c) => deadline_us - c as f64,
                None => f64::NEG_INFINITY,
            }
        })
        .collect();

    // The gossip rounds below only vary in the neighbors' `⟨d, r⟩`, so the
    // round loop rebuilds one reusable candidate buffer straight from the
    // static snapshot rows instead of walking the topology per node per
    // round. Absent neighbors were dropped at snapshot build time, so no
    // round ever considers them as candidates.
    let TableWorkspace {
        list_buf,
        scratch,
        stamp,
        active,
        actives,
        frozen_offsets,
        frozen_flat,
        cands_estimate,
        order,
        order_offsets,
    } = ws;
    list_buf.clear();

    // (Re)shape the persistent visit permutations when the snapshot's row
    // structure differs from what the workspace holds. Matching shapes keep
    // their contents: every entry is a permutation of its row's slots, which
    // is all the fused step requires.
    let shape_ok = order_offsets.len() == n + 1
        && (0..n).all(|i| {
            (order_offsets[i + 1] - order_offsets[i]) as usize
                == snapshot.row(i).len().min(FUSED_STACK)
        });
    if !shape_ok {
        order.clear();
        order_offsets.clear();
        let mut off = 0u32;
        for i in 0..n {
            order_offsets.push(off);
            let len = snapshot.row(i).len().min(FUSED_STACK);
            for s in 0..len {
                order.push(s as u8);
            }
            off += len as u32;
        }
        order_offsets.push(off);
    }

    let mut params: Vec<DrPair> = vec![DrPair::UNREACHABLE; n];
    if !absent.contains(subscriber) {
        params[subscriber.index()] = DrPair::SUBSCRIBER;
    }

    let prop = config.propagation;
    // An absent subscriber never anchors `⟨0, 1⟩`: every broker (correctly)
    // converges to unreachable and all lists come out empty.
    let subscriber_active = !absent.contains(subscriber);

    // Ellipse pruning: a neighbor's `⟨d, r⟩` can never report a `d` below
    // its shortest α-distance to the subscriber, so a broker whose
    // requirement undercuts that bound for *every* neighbor provably holds
    // an empty sending list in every round and stays `UNREACHABLE` — the
    // exact values the full iteration would produce. The survivors form the
    // deadline ellipse around the publisher→subscriber axis
    // (`dist(P→X) + spd(X→S) ≲ deadline`), which shrinks sharply for
    // close pairs and tight deadlines.
    active.clear();
    active.resize(n, false);
    actives.clear();
    for i in 0..n {
        let node = NodeId::new(i as u32);
        if node == subscriber && subscriber_active {
            continue;
        }
        if spd_bound_from_subscriber[i] < requirements[i] {
            active[i] = true;
            actives.push(i as u32);
        }
    }
    let mut rounds_used = 0;
    let mut converged = false;
    scratch.clear();
    scratch.extend_from_slice(&params);
    // The deadline filter and the value-dependent sort make the iteration a
    // *discrete* dynamical system: a neighbor whose `d` sits near a
    // requirement boundary can flap in and out of sending lists (and lists
    // can keep re-ordering), sustaining a limit cycle — a case the paper,
    // which assumes the distributed computation settles, never addresses.
    // Remedy: run the exact iteration for a warm-up; if it has not settled,
    // freeze every list's membership *and order* and keep iterating only
    // the `⟨d, r⟩` values, which then converge like an absorption-time
    // system.
    let warmup = (prop.max_rounds / 2).max(8);
    // Frozen list membership and order, in CSR form (node `i`'s order is
    // `frozen_flat[frozen_offsets[i] .. frozen_offsets[i + 1]]`): two flat
    // buffers instead of one `Vec` per broker. Each entry carries its
    // link's static stats so frozen rounds recompute Eq. 2 without
    // re-searching the row.
    let mut have_frozen = false;
    frozen_offsets.clear();
    frozen_flat.clear();
    // Frontier tracking: a node's update reads only its *neighbors'*
    // `⟨d, r⟩` — the requirement and link stats are static — so a node
    // whose neighbors all held bit-identical values last round would
    // recompute exactly the value it already has. Skipping it leaves every
    // computed value (and the convergence maxima) bit-for-bit unchanged
    // while collapsing each round to the active wavefront around the
    // subscriber. `stamp[i] >= round` means "recompute `i` this round";
    // stamps only grow, so no per-round clearing pass is needed.
    stamp.clear();
    stamp.resize(n, 1);
    let fused = config.ordering == OrderingPolicy::RatioOptimal;
    for round in 1..=prop.max_rounds {
        rounds_used = round;
        let mut freeze_round = false;
        if round > warmup && !have_frozen {
            freeze_round = true;
            frozen_offsets.push(0);
            for i in 0..n {
                if active[i] {
                    let row = snapshot.row(i);
                    build_sending_list_from_row(
                        row,
                        &params,
                        requirements[i],
                        config.ordering,
                        list_buf,
                    );
                    // Every candidate was gathered from `row`, so the find
                    // always succeeds; a miss would mean a corrupted list,
                    // and the degraded path drops that entry.
                    frozen_flat.extend(
                        list_buf
                            .iter()
                            .filter_map(|c| row.iter().find(|&&(nb, _)| nb == c.neighbor).copied()),
                    );
                }
                frozen_offsets.push(frozen_flat.len() as u32);
            }
            have_frozen = true;
        }
        let mut max_dd = 0.0f64;
        let mut max_dr = 0.0f64;
        for &iu in actives.iter() {
            let i = iu as usize;
            // The freeze transition switches every node to the frozen
            // evaluation path; run it as a full round so the skip only
            // ever compares like against like.
            if stamp[i] < round && !freeze_round {
                scratch[i] = params[i];
                continue;
            }
            let p = if !have_frozen {
                let row = snapshot.row(i);
                if fused && row.len() <= FUSED_STACK {
                    let off = order_offsets[i] as usize;
                    node_step_ratio(
                        row,
                        &params,
                        requirements[i],
                        &mut order[off..off + row.len()],
                    )
                } else {
                    build_sending_list_from_row(
                        row,
                        &params,
                        requirements[i],
                        config.ordering,
                        list_buf,
                    );
                    node_params(list_buf)
                }
            } else {
                frozen_list_from_entries(
                    &frozen_flat[frozen_offsets[i] as usize..frozen_offsets[i + 1] as usize],
                    &params,
                    list_buf,
                );
                node_params(list_buf)
            };
            let (dd, dr) = delta(p, params[i]);
            max_dd = max_dd.max(dd);
            max_dr = max_dr.max(dr);
            if p.d.to_bits() != params[i].d.to_bits() || p.r.to_bits() != params[i].r.to_bits() {
                // A changed `⟨d, r⟩` at `i` only perturbs a neighbor whose
                // sending list can actually see `i`. Live rounds re-filter
                // membership by `d < requirement`, so if `i` fails the
                // neighbor's filter both before and after the change, that
                // neighbor's candidate set and every input to it are
                // untouched — leaving it asleep is exact. Frozen rounds pin
                // membership from freeze time (a member's `d` may since
                // have drifted past the requirement), so they wake every
                // neighbor.
                let old_d = params[i].d;
                if !have_frozen {
                    for &(nb, _) in snapshot.row(i) {
                        let t = nb.index();
                        if p.d < requirements[t] || old_d < requirements[t] {
                            stamp[t] = round + 1;
                        }
                    }
                } else {
                    for &(nb, _) in snapshot.row(i) {
                        stamp[nb.index()] = round + 1;
                    }
                }
            }
            scratch[i] = p;
        }
        std::mem::swap(&mut params, scratch);
        if max_dd <= prop.tolerance_d && max_dr <= prop.tolerance_r {
            converged = true;
            break;
        }
    }

    // Final lists from the converged parameters (honoring the freeze, so
    // the returned lists are consistent with the returned values), built
    // directly into the table's own CSR buffers — sized from the previous
    // pair's total, so the common case is one allocation and no copy.
    // Fused-eligible rows reuse the persistent visit order exactly like
    // the round step, keeping the final sort nearly-sorted too.
    let mut list_offsets: Vec<u32> = Vec::with_capacity(n + 1);
    let mut list_cands: Vec<Candidate> = Vec::with_capacity(*cands_estimate);
    list_offsets.push(0);
    for i in 0..n {
        if active[i] {
            if !have_frozen {
                let row = snapshot.row(i);
                if fused && row.len() <= FUSED_STACK {
                    let off = order_offsets[i] as usize;
                    extend_sorted_candidates(
                        row,
                        &params,
                        requirements[i],
                        &mut order[off..off + row.len()],
                        &mut list_cands,
                    );
                } else {
                    build_sending_list_from_row(
                        row,
                        &params,
                        requirements[i],
                        config.ordering,
                        list_buf,
                    );
                    list_cands.extend_from_slice(list_buf);
                }
            } else {
                frozen_list_from_entries(
                    &frozen_flat[frozen_offsets[i] as usize..frozen_offsets[i + 1] as usize],
                    &params,
                    list_buf,
                );
                list_cands.extend_from_slice(list_buf);
            }
        }
        list_offsets.push(list_cands.len() as u32);
    }
    *cands_estimate = list_cands.len();

    SubscriberTables {
        subscriber,
        publisher,
        requirements,
        list_offsets,
        list_cands,
        params,
        rounds_used,
        converged,
        version: 0,
    }
}

/// Convenience wrapper computing the publisher's distance tree internally.
#[must_use]
pub fn compute_tables(
    topo: &Topology,
    estimates: &LinkEstimates,
    m: u32,
    publisher: NodeId,
    subscriber: NodeId,
    deadline_us: f64,
    config: &DcrdConfig,
) -> SubscriberTables {
    let dist = dijkstra(topo, publisher, Metric::Delay);
    compute_tables_with_distances(
        topo,
        estimates,
        m,
        publisher,
        &dist,
        subscriber,
        deadline_us,
        config,
    )
}

/// Rebuilds a sending list with *fixed* membership and order, refreshing
/// only the Eq. 2 values from the current params. The entries carry the
/// link stats captured at freeze time, so this is a straight map with no
/// per-entry row search.
fn frozen_list_from_entries(
    entries: &[(NodeId, LinkStats)],
    params: &[DrPair],
    out: &mut Vec<Candidate>,
) {
    out.clear();
    out.extend(entries.iter().map(|&(nb, stats)| {
        Candidate::from_link(nb, stats.alpha, stats.gamma, params[nb.index()])
    }));
}

/// Sanity helper for tests/benches: the default propagation settings.
#[must_use]
pub fn default_propagation() -> PropagationConfig {
    PropagationConfig::default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcrd_net::estimate::analytic_estimates;
    use dcrd_net::topology::{full_mesh, line, random_connected, ring, DelayRange};
    use dcrd_sim::rng::rng_for;
    use dcrd_sim::SimDuration;

    const MS: f64 = 1_000.0; // µs per ms

    fn cfg() -> DcrdConfig {
        DcrdConfig::default()
    }

    #[test]
    fn line_topology_hand_computed() {
        // 0 -10ms- 1 -10ms- 2 ; subscriber 2, publisher 0, lossless.
        let topo = line(3, SimDuration::from_millis(10));
        let est = analytic_estimates(&topo, 0.0, 0.0);
        let t = compute_tables(
            &topo,
            &est,
            1,
            topo.node(0),
            topo.node(2),
            100.0 * MS,
            &cfg(),
        );
        assert!(t.converged());
        assert_eq!(t.params(topo.node(2)), DrPair::SUBSCRIBER);
        let p1 = t.params(topo.node(1));
        assert!((p1.d - 10.0 * MS).abs() < 1.0);
        assert!((p1.r - 1.0).abs() < 1e-9);
        let p0 = t.params(topo.node(0));
        assert!((p0.d - 20.0 * MS).abs() < 1.0);
        assert!((p0.r - 1.0).abs() < 1e-9);
        // Node 0's list contains only node 1.
        let l0 = t.sending_list(topo.node(0));
        assert_eq!(l0.len(), 1);
        assert_eq!(l0[0].neighbor, topo.node(1));
        // Requirements decay along the path.
        assert!((t.requirement(topo.node(0)) - 100.0 * MS).abs() < 1.0);
        assert!((t.requirement(topo.node(1)) - 90.0 * MS).abs() < 1.0);
    }

    #[test]
    fn lossy_links_reduce_r_and_grow_lists() {
        let topo = ring(4, SimDuration::from_millis(10));
        let est = analytic_estimates(&topo, 0.1, 0.0);
        let t = compute_tables(
            &topo,
            &est,
            1,
            topo.node(0),
            topo.node(2),
            200.0 * MS,
            &cfg(),
        );
        assert!(t.converged());
        let p0 = t.params(topo.node(0));
        // Two disjoint 2-hop routes, each with per-link γ=0.9; with
        // neighbor feedback r must be at least 1−(1−0.81)² and below 1.
        assert!(p0.r > 0.95, "r0 = {}", p0.r);
        assert!(p0.r < 1.0);
        // Node 0 can go either way around the ring.
        assert_eq!(t.sending_list(topo.node(0)).len(), 2);
    }

    #[test]
    fn requirement_filter_prunes_long_detours() {
        // Tight deadline: only the direct neighbor qualifies.
        let topo = ring(6, SimDuration::from_millis(10));
        let est = analytic_estimates(&topo, 0.0, 0.0);
        // subscriber = node 1 (10ms away clockwise, 50ms the other way).
        // Deadline 15ms: the counter-clockwise route (d=50ms) must be
        // filtered everywhere it would exceed the budget.
        let t = compute_tables(
            &topo,
            &est,
            1,
            topo.node(0),
            topo.node(1),
            15.0 * MS,
            &cfg(),
        );
        let l0 = t.sending_list(topo.node(0));
        assert_eq!(l0.len(), 1, "only the direct neighbor meets 15ms");
        assert_eq!(l0[0].neighbor, topo.node(1));
    }

    #[test]
    fn subscriber_itself_has_empty_list_and_identity_params() {
        let mut rng = rng_for(1, "prop");
        let topo = full_mesh(6, DelayRange::PAPER, &mut rng);
        let est = analytic_estimates(&topo, 0.02, 1e-4);
        let t = compute_tables(
            &topo,
            &est,
            1,
            topo.node(0),
            topo.node(3),
            500.0 * MS,
            &cfg(),
        );
        assert!(t.sending_list(topo.node(3)).is_empty());
        assert_eq!(t.params(topo.node(3)), DrPair::SUBSCRIBER);
        assert_eq!(t.subscriber(), topo.node(3));
        assert_eq!(t.publisher(), topo.node(0));
    }

    #[test]
    fn mesh_lists_sorted_by_ratio() {
        let mut rng = rng_for(2, "prop");
        let topo = full_mesh(8, DelayRange::PAPER, &mut rng);
        let est = analytic_estimates(&topo, 0.06, 1e-4);
        let t = compute_tables(
            &topo,
            &est,
            1,
            topo.node(0),
            topo.node(5),
            400.0 * MS,
            &cfg(),
        );
        assert!(t.converged());
        for node in topo.nodes() {
            let list = t.sending_list(node);
            for w in list.windows(2) {
                assert!(
                    w[0].ratio() <= w[1].ratio() + 1e-9,
                    "list of {node} not sorted by d/r"
                );
            }
        }
        // The subscriber's direct link should top every neighbor's list:
        // d/r of the direct hop is hard to beat in a mesh.
        let l0 = t.sending_list(topo.node(0));
        assert!(!l0.is_empty());
    }

    #[test]
    fn unreachable_subscriber_leaves_everything_unreachable() {
        // Disconnected pair: build a line 0-1 and an isolated node 2 via a
        // 3-node line where we only use nodes 0,1 — instead use line(2) plus
        // extra node through builder.
        use dcrd_net::graph::TopologyBuilder;
        let mut b = TopologyBuilder::new(3);
        let nodes = b.nodes();
        b.link(nodes[0], nodes[1], SimDuration::from_millis(10));
        let topo = b.build(); // node 2 isolated
        let est = analytic_estimates(&topo, 0.0, 0.0);
        let t = compute_tables(
            &topo,
            &est,
            1,
            topo.node(0),
            topo.node(2),
            100.0 * MS,
            &cfg(),
        );
        assert!(!t.params(topo.node(0)).reachable());
        assert!(!t.params(topo.node(1)).reachable());
        assert!(t.sending_list(topo.node(0)).is_empty());
        // Nodes unreachable from the publisher have -inf requirement.
        assert_eq!(t.requirement(topo.node(2)), f64::NEG_INFINITY);
    }

    #[test]
    fn convergence_on_random_graphs() {
        for seed in 0..5u64 {
            let mut rng = rng_for(seed, "prop-rand");
            let topo = random_connected(20, 5, DelayRange::PAPER, &mut rng);
            let est = analytic_estimates(&topo, 0.04, 1e-4);
            let t = compute_tables(
                &topo,
                &est,
                1,
                topo.node(0),
                topo.node(10),
                600.0 * MS,
                &cfg(),
            );
            assert!(t.converged(), "seed {seed} did not converge");
            assert!(
                t.rounds_used() < 60,
                "seed {seed} used {} rounds",
                t.rounds_used()
            );
            // Publisher must be able to reach the subscriber.
            assert!(t.params(topo.node(0)).reachable());
        }
    }

    #[test]
    fn m2_increases_r_of_publisher() {
        let mut rng = rng_for(7, "prop-m");
        let topo = random_connected(10, 3, DelayRange::PAPER, &mut rng);
        let est = analytic_estimates(&topo, 0.2, 0.0);
        let t1 = compute_tables(&topo, &est, 1, topo.node(0), topo.node(5), 1e9, &cfg());
        let t2 = compute_tables(&topo, &est, 2, topo.node(0), topo.node(5), 1e9, &cfg());
        // Per-link γ grows with m, so every per-candidate r grows.
        assert!(
            t2.params(topo.node(0)).r >= t1.params(topo.node(0)).r - 1e-9,
            "m=2 r {} < m=1 r {}",
            t2.params(topo.node(0)).r,
            t1.params(topo.node(0)).r
        );
    }

    #[test]
    fn large_overlays_always_converge() {
        // Regression: the deadline filter can flap neighbors in and out of
        // sending lists and orbit forever; the freeze-after-warm-up phase
        // must terminate every subscription on large overlays.
        let mut rng = rng_for(0xC0, "prop-large");
        let topo = random_connected(120, 8, DelayRange::PAPER, &mut rng);
        let est = analytic_estimates(&topo, 0.06, 1e-4);
        let dist = dcrd_net::paths::dijkstra(&topo, topo.node(0), dcrd_net::paths::Metric::Delay);
        for sub in 1..40 {
            let deadline = 3.0 * dist.cost_to(topo.node(sub)).expect("connected") as f64;
            let t = compute_tables_with_distances(
                &topo,
                &est,
                1,
                topo.node(0),
                &dist,
                topo.node(sub),
                deadline,
                &cfg(),
            );
            assert!(t.converged(), "subscription to node {sub} did not converge");
            assert!(t.params(topo.node(0)).reachable());
        }
    }

    #[test]
    fn empty_mask_is_byte_identical() {
        let mut rng = rng_for(11, "prop-mask");
        let topo = random_connected(14, 4, DelayRange::PAPER, &mut rng);
        let est = analytic_estimates(&topo, 0.05, 1e-4);
        let stats = link_transmission_stats(&topo, &est, 1);
        let dist = dijkstra(&topo, topo.node(0), Metric::Delay);
        let plain = compute_tables_prepared(
            &topo,
            &stats,
            topo.node(0),
            &dist,
            topo.node(9),
            500.0 * MS,
            &cfg(),
        );
        let masked = compute_tables_prepared_masked(
            &topo,
            &stats,
            topo.node(0),
            &dist,
            topo.node(9),
            500.0 * MS,
            &cfg(),
            &NodeSet::new(),
        );
        assert_eq!(plain, masked);
    }

    #[test]
    fn masked_computation_routes_around_absent_broker() {
        use dcrd_net::paths::dijkstra_masked;
        // Ring 0-1-2-3-0, subscriber 2, publisher 0. With node 1 absent the
        // only route is 0→3→2.
        let topo = ring(4, SimDuration::from_millis(10));
        let est = analytic_estimates(&topo, 0.0, 0.0);
        let stats = link_transmission_stats(&topo, &est, 1);
        let absent: NodeSet = [topo.node(1)].into_iter().collect();
        let dist = dijkstra_masked(&topo, topo.node(0), Metric::Delay, &absent);
        let t = compute_tables_prepared_masked(
            &topo,
            &stats,
            topo.node(0),
            &dist,
            topo.node(2),
            200.0 * MS,
            &cfg(),
            &absent,
        );
        assert!(t.converged());
        // The dead broker is no candidate anywhere and has no list.
        let l0 = t.sending_list(topo.node(0));
        assert_eq!(l0.len(), 1);
        assert_eq!(l0[0].neighbor, topo.node(3));
        assert!(t.sending_list(topo.node(1)).is_empty());
        assert_eq!(t.requirement(topo.node(1)), f64::NEG_INFINITY);
        assert!(!t.params(topo.node(1)).reachable());
        // Detour delay shows up in the requirement decay: 0 is 20ms from 2
        // the surviving way.
        assert!((t.requirement(topo.node(3)) - 190.0 * MS).abs() < 1.0);
        assert!((t.params(topo.node(0)).d - 20.0 * MS).abs() < 1.0);
    }

    #[test]
    fn masked_absent_subscriber_is_unreachable_everywhere() {
        let topo = line(3, SimDuration::from_millis(10));
        let est = analytic_estimates(&topo, 0.0, 0.0);
        let stats = link_transmission_stats(&topo, &est, 1);
        let absent: NodeSet = [topo.node(2)].into_iter().collect();
        let dist = dijkstra(&topo, topo.node(0), Metric::Delay);
        let t = compute_tables_prepared_masked(
            &topo,
            &stats,
            topo.node(0),
            &dist,
            topo.node(2),
            100.0 * MS,
            &cfg(),
            &absent,
        );
        for i in 0..3 {
            assert!(t.sending_list(topo.node(i)).is_empty());
            assert!(!t.params(topo.node(i)).reachable());
        }
    }

    #[test]
    fn deterministic_output() {
        let mut rng = rng_for(3, "prop-det");
        let topo = random_connected(12, 4, DelayRange::PAPER, &mut rng);
        let est = analytic_estimates(&topo, 0.05, 1e-4);
        let a = compute_tables(
            &topo,
            &est,
            1,
            topo.node(1),
            topo.node(8),
            500.0 * MS,
            &cfg(),
        );
        let b = compute_tables(
            &topo,
            &est,
            1,
            topo.node(1),
            topo.node(8),
            500.0 * MS,
            &cfg(),
        );
        assert_eq!(a, b);
    }
}
