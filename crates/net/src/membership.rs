//! SWIM-style broker membership: a deterministic failure detector, an
//! order-insensitive membership view, and a seeded broker-churn schedule.
//!
//! The paper assumes a fixed broker set; its conclusion names membership
//! churn as the open threat model. This module supplies the three pieces a
//! churn-hardened control plane needs:
//!
//! * [`SwimDetector`] — a probe / indirect-probe / suspect / confirm state
//!   machine in the style of SWIM (Das et al., DSN 2002), driven once per
//!   simulation epoch instead of by wall-clock gossip. Probe loss is a pure
//!   hash of `(seed, node, epoch, probe index)`, so a detector run is
//!   reproducible from its seed alone and never perturbs the runtime's RNG
//!   stream. False suspicions are refuted with **incarnation numbers**: a
//!   suspected-but-alive broker bumps its incarnation, which dominates the
//!   stale suspicion in every view.
//! * [`MembershipView`] — the lattice the detector (and any router mirror)
//!   converges on. Records are ordered by `(incarnation, status precedence)`
//!   with `Alive < Suspect < Dead < Left`, so merging is commutative,
//!   associative and idempotent: any delivery order of the same updates
//!   yields the same view.
//! * [`BrokerChurnModel`] — a seeded schedule of membership transitions
//!   (late joins, graceful leaves, crash deaths) for churn experiments,
//!   in the same pure-hash style as [`chaos`](crate::chaos).
//!
//! The detector reports changes as [`MembershipDelta`]s; routing strategies
//! consume them to repair tables incrementally instead of rebuilding from
//! scratch.

use std::collections::BTreeMap;

use dcrd_sim::SimTime;
use serde::{Deserialize, Serialize};

use crate::failure::DEFAULT_EPOCH;
use crate::graph::NodeId;
use crate::nodeset::NodeSet;

#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Converts a hash to a uniform f64 in [0, 1).
#[inline]
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// What a probe of a broker would actually find — the ground truth the
/// simulation feeds the detector each epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroundTruth {
    /// The broker is running and answers probes (subject to probe loss).
    Up,
    /// The broker is crashed or dead: no probe can be answered.
    Down,
    /// The broker left gracefully and announced its departure.
    Departed,
}

/// A broker's lifecycle status in a [`MembershipView`].
///
/// The ordering is the lattice precedence used to break ties between
/// records with equal incarnation: `Alive < Suspect < Dead < Left`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MemberStatus {
    /// Believed up; probed every epoch.
    Alive,
    /// Missed a direct probe and all indirect probes; will be confirmed
    /// dead unless it refutes within the suspicion window. Still routable.
    Suspect,
    /// Confirmed dead: the suspicion window expired without refutation.
    Dead,
    /// Departed gracefully (announced leave).
    Left,
}

impl MemberStatus {
    /// Whether a broker with this status is still part of the overlay for
    /// routing purposes (suspects are innocent until confirmed).
    #[must_use]
    pub fn is_present(self) -> bool {
        matches!(self, MemberStatus::Alive | MemberStatus::Suspect)
    }
}

/// One broker's record in a [`MembershipView`]: its incarnation number and
/// lifecycle status.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemberRecord {
    /// Monotone refutation counter; bumped each time the broker disputes a
    /// suspicion or rejoins after departure.
    pub incarnation: u64,
    /// Lifecycle status at this incarnation.
    pub status: MemberStatus,
}

impl MemberRecord {
    /// The lattice key: records with a higher key dominate. Higher
    /// incarnations always win; within one incarnation the more severe
    /// status wins.
    #[must_use]
    fn key(self) -> (u64, MemberStatus) {
        (self.incarnation, self.status)
    }
}

/// A membership change reported by the [`SwimDetector`].
///
/// Deltas are the control-plane currency: routing strategies receive them
/// via `on_membership` and repair their tables incrementally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MembershipDelta {
    /// A broker joined (late join, or rejoin after a confirmed death).
    Join {
        /// The joining broker.
        node: NodeId,
    },
    /// A broker left gracefully (announced departure).
    Leave {
        /// The departing broker.
        node: NodeId,
    },
    /// A suspected broker's suspicion window expired: it is now confirmed
    /// dead and must be routed around.
    ConfirmDead {
        /// The confirmed-dead broker.
        node: NodeId,
    },
    /// A falsely suspected broker disputed the suspicion by bumping its
    /// incarnation; it stays a member.
    Refute {
        /// The refuting broker.
        node: NodeId,
        /// Its new (bumped) incarnation number.
        incarnation: u64,
    },
}

impl MembershipDelta {
    /// The broker this delta is about.
    #[must_use]
    pub fn node(&self) -> NodeId {
        match *self {
            MembershipDelta::Join { node }
            | MembershipDelta::Leave { node }
            | MembershipDelta::ConfirmDead { node }
            | MembershipDelta::Refute { node, .. } => node,
        }
    }

    /// Whether this delta removes the broker from the routable overlay.
    #[must_use]
    pub fn removes(&self) -> bool {
        matches!(
            self,
            MembershipDelta::Leave { .. } | MembershipDelta::ConfirmDead { .. }
        )
    }
}

/// The membership lattice: each broker's highest-known
/// `(incarnation, status)` record.
///
/// [`apply`](MembershipView::apply) keeps the per-broker maximum under the
/// lattice order, so applying any permutation (or duplication) of the same
/// record set converges to the same view — the property churned gossip
/// needs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MembershipView {
    records: BTreeMap<NodeId, MemberRecord>,
}

impl MembershipView {
    /// Creates an empty view.
    #[must_use]
    pub fn new() -> Self {
        MembershipView::default()
    }

    /// Applies one record, keeping the lattice maximum. Returns `true` if
    /// the view changed.
    pub fn apply(&mut self, node: NodeId, record: MemberRecord) -> bool {
        match self.records.get_mut(&node) {
            Some(existing) => {
                if record.key() > existing.key() {
                    *existing = record;
                    true
                } else {
                    false
                }
            }
            None => {
                self.records.insert(node, record);
                true
            }
        }
    }

    /// Merges every record of `other` into `self`.
    pub fn merge(&mut self, other: &MembershipView) {
        for (&node, &record) in &other.records {
            self.apply(node, record);
        }
    }

    /// The record for `node`, if any.
    #[must_use]
    pub fn record(&self, node: NodeId) -> Option<MemberRecord> {
        self.records.get(&node).copied()
    }

    /// Whether `node` is currently part of the routable overlay (unknown
    /// brokers are not).
    #[must_use]
    pub fn is_present(&self, node: NodeId) -> bool {
        self.records
            .get(&node)
            .is_some_and(|r| r.status.is_present())
    }

    /// The set of brokers that are confirmed gone (`Dead` or `Left`).
    #[must_use]
    pub fn absent_set(&self) -> NodeSet {
        self.records
            .iter()
            .filter(|(_, r)| !r.status.is_present())
            .map(|(&n, _)| n)
            .collect()
    }

    /// Iterates over all `(node, record)` pairs in node order.
    pub fn records(&self) -> impl Iterator<Item = (NodeId, MemberRecord)> + '_ {
        self.records.iter().map(|(&n, &r)| (n, r))
    }
}

/// Tuning knobs for the [`SwimDetector`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SwimConfig {
    /// Probability that any single probe (direct or indirect) is lost even
    /// though the target is up — the source of false suspicions.
    pub probe_loss: f64,
    /// Number of indirect probers asked to confirm a missed direct probe
    /// (SWIM's `k`).
    pub indirect_probes: u32,
    /// Epochs a suspect has to refute before it is confirmed dead.
    pub suspicion_epochs: u64,
    /// Seed for the detector's deterministic probe-loss draws.
    pub seed: u64,
}

impl Default for SwimConfig {
    fn default() -> Self {
        SwimConfig {
            probe_loss: 0.15,
            indirect_probes: 3,
            suspicion_epochs: 3,
            seed: 0,
        }
    }
}

/// Deterministic SWIM-style failure detector.
///
/// Once per epoch, [`tick`](SwimDetector::tick) probes every member against
/// the simulation's ground truth and advances the
/// probe → indirect-probe → suspect → confirm state machine:
///
/// * An **alive** broker whose direct probe and all `k` indirect probes
///   fail (lost, or the broker is down) becomes a **suspect** with a
///   refutation deadline.
/// * A **suspect** that answers any probe before its deadline **refutes**
///   the suspicion, bumping its incarnation ([`MembershipDelta::Refute`]).
/// * A suspect still unreachable at its deadline is **confirmed dead**
///   ([`MembershipDelta::ConfirmDead`]).
/// * A broker that announces departure leaves immediately
///   ([`MembershipDelta::Leave`]) — no suspicion needed.
/// * A dead or departed broker that answers probes again **joins** with a
///   bumped incarnation ([`MembershipDelta::Join`]).
///
/// All probe-loss draws are pure hashes of `(seed, node, epoch, probe)`:
/// two detectors with the same seed observing the same ground truth emit
/// identical delta sequences.
#[derive(Debug, Clone)]
pub struct SwimDetector {
    config: SwimConfig,
    view: MembershipView,
    /// Refutation deadline (epoch) per current suspect.
    deadlines: BTreeMap<NodeId, u64>,
}

impl SwimDetector {
    /// Creates a detector over brokers `0..num_nodes`; `present` marks the
    /// brokers that are up at epoch 0 (the rest start as departed and join
    /// when they first answer probes).
    #[must_use]
    pub fn new(num_nodes: usize, present: impl Fn(NodeId) -> bool, config: SwimConfig) -> Self {
        let mut view = MembershipView::new();
        for i in 0..num_nodes {
            let node = NodeId::new(i as u32);
            let status = if present(node) {
                MemberStatus::Alive
            } else {
                MemberStatus::Left
            };
            view.apply(
                node,
                MemberRecord {
                    incarnation: 0,
                    status,
                },
            );
        }
        SwimDetector {
            config,
            view,
            deadlines: BTreeMap::new(),
        }
    }

    /// The detector's current membership view.
    #[must_use]
    pub fn view(&self) -> &MembershipView {
        &self.view
    }

    /// Whether probe number `probe` (0 = direct, 1..=k = indirect) of
    /// `node` in `epoch` is lost in transit.
    fn probe_lost(&self, node: NodeId, epoch: u64, probe: u32) -> bool {
        if self.config.probe_loss <= 0.0 {
            return false;
        }
        let h = mix(self.config.seed
            ^ mix(u64::from(node.index() as u32) ^ 0x51A7)
            ^ mix(epoch ^ 0xBEEF)
            ^ mix(u64::from(probe) ^ 0x1D1D));
        unit(h) < self.config.probe_loss
    }

    /// Whether any probe of `node` gets through this epoch: the direct
    /// probe, or one of the `k` indirect probes. A down or departed broker
    /// never answers.
    fn probe_answers(&self, node: NodeId, epoch: u64, truth: GroundTruth) -> bool {
        if truth != GroundTruth::Up {
            return false;
        }
        (0..=self.config.indirect_probes).any(|probe| !self.probe_lost(node, epoch, probe))
    }

    /// Runs one epoch of probing against `truth` and returns the membership
    /// deltas, in node order.
    pub fn tick(
        &mut self,
        epoch: u64,
        truth: impl Fn(NodeId) -> GroundTruth,
    ) -> Vec<MembershipDelta> {
        let mut deltas = Vec::new();
        let nodes: Vec<(NodeId, MemberRecord)> = self.view.records().collect();
        for (node, record) in nodes {
            let t = truth(node);
            match record.status {
                MemberStatus::Alive => match t {
                    GroundTruth::Departed => {
                        self.view.apply(
                            node,
                            MemberRecord {
                                incarnation: record.incarnation,
                                status: MemberStatus::Left,
                            },
                        );
                        deltas.push(MembershipDelta::Leave { node });
                    }
                    GroundTruth::Up | GroundTruth::Down => {
                        if !self.probe_answers(node, epoch, t) {
                            self.view.apply(
                                node,
                                MemberRecord {
                                    incarnation: record.incarnation,
                                    status: MemberStatus::Suspect,
                                },
                            );
                            self.deadlines
                                .insert(node, epoch + self.config.suspicion_epochs);
                        }
                    }
                },
                MemberStatus::Suspect => match t {
                    GroundTruth::Departed => {
                        self.deadlines.remove(&node);
                        self.view.apply(
                            node,
                            MemberRecord {
                                incarnation: record.incarnation,
                                status: MemberStatus::Left,
                            },
                        );
                        deltas.push(MembershipDelta::Leave { node });
                    }
                    GroundTruth::Up | GroundTruth::Down => {
                        if self.probe_answers(node, epoch, t) {
                            // Refutation: the suspect disputes with a higher
                            // incarnation, which dominates the suspicion.
                            let incarnation = record.incarnation + 1;
                            self.deadlines.remove(&node);
                            self.view.apply(
                                node,
                                MemberRecord {
                                    incarnation,
                                    status: MemberStatus::Alive,
                                },
                            );
                            deltas.push(MembershipDelta::Refute { node, incarnation });
                        } else {
                            let expired = self
                                .deadlines
                                .get(&node)
                                .is_none_or(|&deadline| epoch >= deadline);
                            if expired {
                                self.deadlines.remove(&node);
                                self.view.apply(
                                    node,
                                    MemberRecord {
                                        incarnation: record.incarnation,
                                        status: MemberStatus::Dead,
                                    },
                                );
                                deltas.push(MembershipDelta::ConfirmDead { node });
                            }
                        }
                    }
                },
                MemberStatus::Dead | MemberStatus::Left => {
                    if self.probe_answers(node, epoch, t) {
                        // Rejoin (or late join): a fresh incarnation
                        // dominates the dead/left record everywhere.
                        let incarnation = record.incarnation + 1;
                        self.view.apply(
                            node,
                            MemberRecord {
                                incarnation,
                                status: MemberStatus::Alive,
                            },
                        );
                        deltas.push(MembershipDelta::Join { node });
                    }
                }
            }
        }
        deltas
    }
}

/// The kind and epoch of a broker's single scheduled churn transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnEvent {
    /// The broker is absent from the start and joins at this epoch.
    Join(u64),
    /// The broker leaves gracefully (announced) at this epoch.
    Leave(u64),
    /// The broker crash-dies (unannounced, custody lost) at this epoch.
    Death(u64),
}

/// A seeded schedule of broker membership churn.
///
/// Each non-protected broker is a *churner* with probability `rate`; every
/// churner gets exactly one transition, hash-assigned uniformly among late
/// join, graceful leave and crash death. Joins land in the first third of
/// the run, departures in the middle third — the final third measures
/// recovery. Protected brokers (publishers, anchor subscribers) never
/// churn.
///
/// Every query is a pure hash of `(seed, node)`; the model is `Copy` and
/// carries a 256-broker protection bitmask inline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BrokerChurnModel {
    rate: f64,
    horizon_epochs: u64,
    seed: u64,
    /// Bitmask of protected node indices (up to 256 brokers).
    protected: [u64; 4],
}

impl BrokerChurnModel {
    /// Creates a churn schedule over a run of `horizon_epochs` epochs where
    /// each broker churns with probability `rate`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1]` or the horizon is shorter than
    /// 6 epochs (too short to fit join, departure and recovery windows).
    #[must_use]
    pub fn new(rate: f64, horizon_epochs: u64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "churn rate out of range: {rate}"
        );
        assert!(horizon_epochs >= 6, "churn horizon must be ≥ 6 epochs");
        BrokerChurnModel {
            rate,
            horizon_epochs,
            seed,
            protected: [0; 4],
        }
    }

    /// Marks `node` as protected (never churns). Supports node indices up
    /// to 255.
    ///
    /// # Panics
    ///
    /// Panics if the node index is ≥ 256.
    #[must_use]
    pub fn protect(mut self, node: NodeId) -> Self {
        let idx = node.index();
        assert!(idx < 256, "protection bitmask covers node indices < 256");
        self.protected[idx / 64] |= 1u64 << (idx % 64);
        self
    }

    /// Whether `node` is protected from churn.
    #[must_use]
    pub fn is_protected(&self, node: NodeId) -> bool {
        let idx = node.index();
        self.protected
            .get(idx / 64)
            .is_some_and(|w| w & (1u64 << (idx % 64)) != 0)
    }

    /// The per-broker churn probability.
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The run length the schedule was drawn for, in epochs.
    #[must_use]
    pub fn horizon_epochs(&self) -> u64 {
        self.horizon_epochs
    }

    /// Whether the schedule can never produce a transition.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rate <= 0.0
    }

    /// Draws an epoch uniformly from `[lo, hi)` (hash-deterministic).
    fn draw_epoch(&self, node: u64, salt: u64, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi);
        let h = mix(self.seed ^ mix(node ^ salt));
        lo + h % (hi - lo)
    }

    /// The scheduled transition for `node`, if it is a churner.
    #[must_use]
    pub fn event(&self, node: NodeId) -> Option<ChurnEvent> {
        if self.rate <= 0.0 || self.is_protected(node) {
            return None;
        }
        let me = u64::from(node.index() as u32);
        if unit(mix(self.seed ^ mix(me ^ 0xC0A3))) >= self.rate {
            return None;
        }
        let third = (self.horizon_epochs / 3).max(2);
        let kind = mix(self.seed ^ mix(me ^ 0x7E57)) % 3;
        Some(match kind {
            0 => ChurnEvent::Join(self.draw_epoch(me, 0x10CA, 1, third)),
            1 => ChurnEvent::Leave(self.draw_epoch(me, 0x1EAF, third, 2 * third)),
            _ => ChurnEvent::Death(self.draw_epoch(me, 0xDEAD, third, 2 * third)),
        })
    }

    /// The epoch `node` joins, or 0 if it is present from the start.
    #[must_use]
    pub fn join_epoch(&self, node: NodeId) -> u64 {
        match self.event(node) {
            Some(ChurnEvent::Join(e)) => e,
            _ => 0,
        }
    }

    /// The epoch and kind of `node`'s departure, if one is scheduled.
    /// `true` means a crash death (unannounced), `false` a graceful leave.
    #[must_use]
    pub fn depart(&self, node: NodeId) -> Option<(u64, bool)> {
        match self.event(node) {
            Some(ChurnEvent::Leave(e)) => Some((e, false)),
            Some(ChurnEvent::Death(e)) => Some((e, true)),
            _ => None,
        }
    }

    /// Whether `node` is part of the overlay during `epoch`.
    #[must_use]
    pub fn present_in_epoch(&self, node: NodeId, epoch: u64) -> bool {
        match self.event(node) {
            None => true,
            Some(ChurnEvent::Join(e)) => epoch >= e,
            Some(ChurnEvent::Leave(e)) | Some(ChurnEvent::Death(e)) => epoch < e,
        }
    }

    /// Whether `node` crash-died at or before `epoch` (unannounced death —
    /// its custody is lost until handed off).
    #[must_use]
    pub fn dead_in_epoch(&self, node: NodeId, epoch: u64) -> bool {
        matches!(self.event(node), Some(ChurnEvent::Death(e)) if epoch >= e)
    }

    /// Whether `node` left gracefully at or before `epoch`.
    #[must_use]
    pub fn departed_in_epoch(&self, node: NodeId, epoch: u64) -> bool {
        matches!(self.event(node), Some(ChurnEvent::Leave(e)) if epoch >= e)
    }

    /// The epoch index containing `at` (1-second epochs, matching the other
    /// chaos models).
    #[must_use]
    pub fn epoch_index(at: SimTime) -> u64 {
        at.as_micros() / DEFAULT_EPOCH.as_micros()
    }

    /// Whether `node` is part of the overlay at instant `at`.
    #[must_use]
    pub fn present_at(&self, node: NodeId, at: SimTime) -> bool {
        self.present_in_epoch(node, Self::epoch_index(at))
    }

    /// Whether `node` is absent (not yet joined, left, or dead) at `at`.
    #[must_use]
    pub fn absent_at(&self, node: NodeId, at: SimTime) -> bool {
        !self.present_at(node, at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn rec(incarnation: u64, status: MemberStatus) -> MemberRecord {
        MemberRecord {
            incarnation,
            status,
        }
    }

    #[test]
    fn lattice_prefers_higher_incarnation_then_severity() {
        let mut v = MembershipView::new();
        assert!(v.apply(n(0), rec(0, MemberStatus::Alive)));
        assert!(v.apply(n(0), rec(0, MemberStatus::Suspect)));
        // Same incarnation, lower severity: rejected.
        assert!(!v.apply(n(0), rec(0, MemberStatus::Alive)));
        // Higher incarnation beats any status.
        assert!(v.apply(n(0), rec(1, MemberStatus::Alive)));
        assert_eq!(v.record(n(0)), Some(rec(1, MemberStatus::Alive)));
        // Stale dead record at the old incarnation: rejected.
        assert!(!v.apply(n(0), rec(0, MemberStatus::Dead)));
        assert!(v.is_present(n(0)));
    }

    #[test]
    fn merge_is_order_insensitive() {
        let updates = [
            (n(0), rec(0, MemberStatus::Suspect)),
            (n(0), rec(1, MemberStatus::Alive)),
            (n(1), rec(0, MemberStatus::Dead)),
            (n(1), rec(0, MemberStatus::Suspect)),
            (n(2), rec(2, MemberStatus::Left)),
            (n(2), rec(3, MemberStatus::Alive)),
        ];
        let mut forward = MembershipView::new();
        for &(node, r) in &updates {
            forward.apply(node, r);
        }
        let mut backward = MembershipView::new();
        for &(node, r) in updates.iter().rev() {
            backward.apply(node, r);
        }
        assert_eq!(forward, backward);
        // Merging a view into itself is idempotent.
        let snapshot = forward.clone();
        forward.merge(&snapshot);
        assert_eq!(forward, snapshot);
    }

    #[test]
    fn absent_set_tracks_dead_and_left() {
        let mut v = MembershipView::new();
        v.apply(n(0), rec(0, MemberStatus::Alive));
        v.apply(n(1), rec(0, MemberStatus::Dead));
        v.apply(n(2), rec(0, MemberStatus::Left));
        v.apply(n(3), rec(0, MemberStatus::Suspect));
        let absent = v.absent_set();
        assert!(!absent.contains(n(0)));
        assert!(absent.contains(n(1)));
        assert!(absent.contains(n(2)));
        assert!(!absent.contains(n(3)), "suspects stay routable");
        assert_eq!(absent.len(), 2);
    }

    #[test]
    fn detector_confirms_a_dead_broker_after_the_window() {
        let config = SwimConfig {
            probe_loss: 0.0,
            suspicion_epochs: 3,
            ..SwimConfig::default()
        };
        let mut det = SwimDetector::new(4, |_| true, config);
        let dead = n(2);
        let truth = |node: NodeId| {
            if node == dead {
                GroundTruth::Down
            } else {
                GroundTruth::Up
            }
        };
        // Epoch 1: direct + indirect probes all fail → suspect, no delta.
        assert!(det.tick(1, truth).is_empty());
        assert_eq!(
            det.view().record(dead).map(|r| r.status),
            Some(MemberStatus::Suspect)
        );
        assert!(det.view().is_present(dead), "suspects are still members");
        // Epochs 2–3: still within the window.
        assert!(det.tick(2, truth).is_empty());
        assert!(det.tick(3, truth).is_empty());
        // Epoch 4: deadline (1 + 3) reached → confirmed.
        assert_eq!(
            det.tick(4, truth),
            vec![MembershipDelta::ConfirmDead { node: dead }]
        );
        assert!(!det.view().is_present(dead));
        assert!(det.view().absent_set().contains(dead));
    }

    #[test]
    fn false_suspicion_is_refuted_with_incarnation_bump() {
        // Find an epoch where node 1's direct and all indirect probes are
        // lost even though it is up, then let it refute next epoch.
        let config = SwimConfig {
            probe_loss: 0.6,
            indirect_probes: 2,
            suspicion_epochs: 5,
            seed: 77,
        };
        let mut det = SwimDetector::new(2, |_| true, config);
        let target = n(1);
        let mut suspected_at = None;
        for epoch in 1..400u64 {
            let deltas = det.tick(epoch, |_| GroundTruth::Up);
            let status = det.view().record(target).map(|r| r.status);
            if suspected_at.is_none() {
                if status == Some(MemberStatus::Suspect) {
                    suspected_at = Some(epoch);
                }
            } else if let Some(d) = deltas.iter().find(|d| d.node() == target) {
                match d {
                    MembershipDelta::Refute { incarnation, .. } => {
                        assert!(*incarnation >= 1, "refutation must bump incarnation");
                        assert!(det.view().is_present(target));
                        return;
                    }
                    MembershipDelta::ConfirmDead { .. } => {
                        // Possible but wildly unlikely at these parameters
                        // (requires ~15 consecutive all-lost epochs).
                        panic!("up broker confirmed dead before refuting");
                    }
                    _ => {}
                }
            }
        }
        panic!("no suspicion of an up broker in 400 epochs at 60% probe loss");
    }

    #[test]
    fn graceful_leave_and_rejoin_emit_leave_then_join() {
        let config = SwimConfig {
            probe_loss: 0.0,
            ..SwimConfig::default()
        };
        let mut det = SwimDetector::new(3, |_| true, config);
        let mover = n(1);
        let gone = |node: NodeId| {
            if node == mover {
                GroundTruth::Departed
            } else {
                GroundTruth::Up
            }
        };
        assert_eq!(
            det.tick(1, gone),
            vec![MembershipDelta::Leave { node: mover }]
        );
        assert!(!det.view().is_present(mover));
        // Still gone: no repeated delta.
        assert!(det.tick(2, gone).is_empty());
        // Comes back: join with bumped incarnation.
        assert_eq!(
            det.tick(3, |_| GroundTruth::Up),
            vec![MembershipDelta::Join { node: mover }]
        );
        assert!(det.view().is_present(mover));
        assert!(det.view().record(mover).map(|r| r.incarnation) >= Some(1));
    }

    #[test]
    fn late_member_joins_when_it_first_answers() {
        let config = SwimConfig {
            probe_loss: 0.0,
            ..SwimConfig::default()
        };
        let late = n(2);
        let mut det = SwimDetector::new(3, |node| node != late, config);
        assert!(!det.view().is_present(late));
        let absent = |node: NodeId| {
            if node == late {
                GroundTruth::Down
            } else {
                GroundTruth::Up
            }
        };
        assert!(det.tick(1, absent).is_empty());
        assert_eq!(
            det.tick(2, |_| GroundTruth::Up),
            vec![MembershipDelta::Join { node: late }]
        );
        assert!(det.view().is_present(late));
    }

    #[test]
    fn detector_is_deterministic() {
        let config = SwimConfig {
            probe_loss: 0.3,
            seed: 9,
            ..SwimConfig::default()
        };
        let run = || {
            let mut det = SwimDetector::new(6, |_| true, config);
            let mut all = Vec::new();
            for epoch in 1..50u64 {
                let truth = |node: NodeId| {
                    if node.index() == 3 && (10..20).contains(&epoch) {
                        GroundTruth::Down
                    } else {
                        GroundTruth::Up
                    }
                };
                all.extend(det.tick(epoch, truth));
            }
            all
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn churn_schedule_is_consistent() {
        let m = BrokerChurnModel::new(0.5, 60, 42).protect(n(0));
        assert!(m.event(n(0)).is_none(), "protected brokers never churn");
        assert!(m.is_protected(n(0)));
        let mut churners = 0;
        for i in 0..32u32 {
            let node = n(i);
            match m.event(node) {
                None => {
                    for epoch in 0..60 {
                        assert!(m.present_in_epoch(node, epoch));
                        assert!(!m.dead_in_epoch(node, epoch));
                    }
                }
                Some(ChurnEvent::Join(e)) => {
                    churners += 1;
                    assert!((1..20).contains(&e), "join epoch {e} outside first third");
                    assert!(!m.present_in_epoch(node, e - 1));
                    assert!(m.present_in_epoch(node, e));
                    assert_eq!(m.join_epoch(node), e);
                    assert!(m.depart(node).is_none());
                }
                Some(ChurnEvent::Leave(e)) => {
                    churners += 1;
                    assert!(
                        (20..40).contains(&e),
                        "leave epoch {e} outside middle third"
                    );
                    assert!(m.present_in_epoch(node, e - 1));
                    assert!(!m.present_in_epoch(node, e));
                    assert!(m.departed_in_epoch(node, e));
                    assert!(!m.dead_in_epoch(node, e));
                    assert_eq!(m.depart(node), Some((e, false)));
                }
                Some(ChurnEvent::Death(e)) => {
                    churners += 1;
                    assert!(
                        (20..40).contains(&e),
                        "death epoch {e} outside middle third"
                    );
                    assert!(m.dead_in_epoch(node, e));
                    assert!(!m.present_in_epoch(node, e));
                    assert_eq!(m.depart(node), Some((e, true)));
                }
            }
        }
        assert!(
            (8..=24).contains(&churners),
            "about half of 32 brokers should churn, got {churners}"
        );
    }

    #[test]
    fn churn_zero_rate_is_empty() {
        let m = BrokerChurnModel::new(0.0, 30, 7);
        assert!(m.is_empty());
        for i in 0..16u32 {
            assert!(m.event(n(i)).is_none());
        }
        assert!(!BrokerChurnModel::new(0.4, 30, 7).is_empty());
    }

    #[test]
    fn churn_instant_queries_match_epoch_queries() {
        let m = BrokerChurnModel::new(0.6, 40, 3);
        for i in 0..16u32 {
            for epoch in 0..40u64 {
                let mid = SimTime::from_secs(epoch) + dcrd_sim::SimDuration::from_millis(500);
                assert_eq!(m.present_at(n(i), mid), m.present_in_epoch(n(i), epoch));
                assert_eq!(m.absent_at(n(i), mid), !m.present_in_epoch(n(i), epoch));
            }
        }
    }
}
