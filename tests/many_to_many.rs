//! Many-to-many pub/sub: several publishers sharing one topic, each with
//! its own deadline geometry — the decoupling the pub/sub paradigm
//! promises. Strategies key their routing state by `(topic, publisher)`,
//! so shared topics must route every publisher's messages independently.

use dcrd::baselines::tree::d_tree;
use dcrd::core::{DcrdConfig, DcrdStrategy};
use dcrd::net::failure::{FailureModel, LinkFailureModel};
use dcrd::net::loss::LossModel;
use dcrd::net::paths::{dijkstra, Metric};
use dcrd::net::topology::{random_connected, DelayRange};
use dcrd::net::Topology;
use dcrd::pubsub::runtime::{DeliveryLog, OverlayRuntime, RuntimeConfig};
use dcrd::pubsub::strategy::RoutingStrategy;
use dcrd::pubsub::topic::{Subscription, TopicId};
use dcrd::pubsub::workload::{TopicSpec, Workload};
use dcrd::sim::rng::rng_for;
use dcrd::sim::SimDuration;

/// One topic, three publishers at different corners of the overlay, two
/// shared subscribers with per-publisher deadlines (3× each shortest path).
fn shared_topic_workload(topo: &Topology) -> Workload {
    let publishers = [0usize, 5, 10];
    let subscribers = [14usize, 7];
    let topics = publishers
        .iter()
        .enumerate()
        .map(|(k, &p)| {
            let publisher = topo.node(p);
            let sp = dijkstra(topo, publisher, Metric::Delay);
            TopicSpec {
                topic: TopicId::new(0), // the SAME topic for every publisher
                publisher,
                interval: SimDuration::from_secs(1),
                offset: SimDuration::from_millis(k as u64 * 137),
                subscriptions: subscribers
                    .iter()
                    .map(|&s| {
                        let node = topo.node(s);
                        let base = sp.cost_to(node).expect("connected");
                        Subscription::new(node, SimDuration::from_micros(base).mul_f64(3.0))
                    })
                    .collect(),
                burst: None,
            }
        })
        .collect();
    Workload::from_topics(topics)
}

fn run(strategy: &mut (impl RoutingStrategy + ?Sized), pf: f64) -> DeliveryLog {
    let topo = random_connected(15, 5, DelayRange::PAPER, &mut rng_for(3, "m2m"));
    let workload = shared_topic_workload(&topo);
    let failure = FailureModel::links_only(LinkFailureModel::new(pf, 0x22));
    let config = RuntimeConfig::paper(SimDuration::from_secs(60), 4);
    OverlayRuntime::new(&topo, &workload, failure, LossModel::PAPER_DEFAULT, config).run(strategy)
}

#[test]
fn dcrd_routes_every_publisher_of_a_shared_topic() {
    let log = run(&mut DcrdStrategy::new(DcrdConfig::default()), 0.04);
    // Publisher offsets 0/137/274 ms in a 60 s run → 61 + 60 + 60 messages.
    assert_eq!(log.messages_published, 181);
    assert_eq!(log.num_expectations(), 181 * 2);
    assert!(
        log.delivery_ratio() > 0.999,
        "shared-topic delivery {}",
        log.delivery_ratio()
    );
    assert!(
        log.qos_delivery_ratio() > 0.95,
        "shared-topic QoS {}",
        log.qos_delivery_ratio()
    );
}

#[test]
fn trees_keep_per_publisher_routes_distinct() {
    let log = run(&mut d_tree(), 0.0);
    // Lossless: if one publisher's tree overwrote another's (a key
    // collision), its messages would systematically vanish.
    assert!(
        (log.delivery_ratio() - 1.0).abs() < 0.001,
        "tree delivery {} — per-publisher trees must not collide",
        log.delivery_ratio()
    );
}

#[test]
fn per_publisher_tables_are_distinct() {
    let topo = random_connected(15, 5, DelayRange::PAPER, &mut rng_for(3, "m2m"));
    let workload = shared_topic_workload(&topo);
    let failure = FailureModel::links_only(LinkFailureModel::new(0.0, 1));
    let config = RuntimeConfig::paper(SimDuration::from_secs(1), 1);
    let mut strategy = DcrdStrategy::new(DcrdConfig::default());
    let _ = OverlayRuntime::new(&topo, &workload, failure, LossModel::new(0.0), config)
        .run(&mut strategy);
    let topic = TopicId::new(0);
    let sub = topo.node(14);
    let a = strategy
        .tables_for(topic, topo.node(0), sub)
        .expect("publisher 0 tables");
    let b = strategy
        .tables_for(topic, topo.node(5), sub)
        .expect("publisher 5 tables");
    // Different publishers anchor different deadline budgets.
    assert_ne!(
        a.requirement(topo.node(14)),
        b.requirement(topo.node(14)),
        "per-publisher requirements must differ"
    );
}
