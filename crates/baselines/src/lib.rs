//! # dcrd-baselines — the paper's comparison strategies
//!
//! The DCRD evaluation (§IV-B) compares against four baselines, all built
//! here on a shared hop-by-hop ACK engine ([`common`]):
//!
//! * **R-Tree** ([`tree::RTreeStrategy`]) — "most reliable tree": routes
//!   every `(publisher, subscriber)` pair along the minimum-**hop** path.
//!   Fewer links ⇒ fewer failure opportunities.
//! * **D-Tree** ([`tree::DTreeStrategy`]) — "shortest-delay tree": routes
//!   along the minimum-**delay** path.
//! * **ORACLE** ([`oracle::OracleStrategy`]) — knows the instantaneous
//!   failure state of the whole network and always forwards along the
//!   shortest-delay path that avoids failed links; the performance upper
//!   bound.
//! * **Multipath** ([`multipath::MultipathStrategy`]) — sends every message
//!   to every subscriber twice: once along the shortest-delay path and once
//!   along the top-5 shortest-delay path sharing the fewest links with it
//!   ([`dcrd_net::paths::multipath_pair`]).
//!
//! None of the baselines reroutes around a failure it discovers — that is
//! exactly the gap DCRD fills.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod common;
pub mod multipath;
pub mod oracle;
pub mod tree;

pub use multipath::MultipathStrategy;
pub use oracle::OracleStrategy;
pub use tree::{DTreeStrategy, RTreeStrategy};
