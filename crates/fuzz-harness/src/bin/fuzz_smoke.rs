//! CI smoke driver for the deterministic fuzzers.
//!
//! ```text
//! fuzz-smoke [bytes|scripts|callbacks|all] [iterations] [seed]
//! ```
//!
//! Runs a budgeted pass of the selected fuzzer(s) and prints the seed and
//! the tally; any oracle breach panics with the reproducing `(seed,
//! index)` pair, so a red CI job is a one-line repro. Defaults: `all`,
//! a CI-sized budget, seed 1.

use dcrd_fuzz_harness::{run_byte_fuzz, run_callback_fuzz, run_script_fuzz};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mode = args.get(1).map_or("all", String::as_str);
    let iterations: u64 = args
        .get(2)
        .map(|s| s.parse().expect("iterations must be a number"))
        .unwrap_or(0);
    let seed: u64 = args
        .get(3)
        .map(|s| s.parse().expect("seed must be a number"))
        .unwrap_or(1);

    let pick = |default: u64| if iterations == 0 { default } else { iterations };
    match mode {
        "bytes" => {
            let n = pick(100_000);
            println!("byte-fuzz: seed={seed} iterations={n}");
            println!("  {}", run_byte_fuzz(seed, n));
        }
        "scripts" => {
            let n = pick(200);
            println!("script-fuzz: seed={seed} scripts={n}");
            println!("  {}", run_script_fuzz(seed, n));
        }
        "callbacks" => {
            let n = pick(500);
            println!("callback-fuzz: seed={seed} scripts={n}");
            println!("  {}", run_callback_fuzz(seed, n, 128));
        }
        "all" => {
            let n = pick(50_000);
            println!("byte-fuzz: seed={seed} iterations={n}");
            println!("  {}", run_byte_fuzz(seed, n));
            let s = pick(100).min(1_000);
            println!("script-fuzz: seed={seed} scripts={s}");
            println!("  {}", run_script_fuzz(seed, s));
            let c = pick(200).min(2_000);
            println!("callback-fuzz: seed={seed} scripts={c}");
            println!("  {}", run_callback_fuzz(seed, c, 128));
        }
        other => {
            eprintln!("unknown mode {other:?}; use bytes|scripts|callbacks|all");
            std::process::exit(2);
        }
    }
    println!("fuzz-smoke: all oracles held");
}
