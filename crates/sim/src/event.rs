//! Stable timestamped event queue.
//!
//! The queue is the heart of the discrete-event engine: components schedule
//! events at future instants and the run loop pops them in time order.
//! Ties are broken by insertion order (FIFO), which makes simulation runs
//! fully deterministic for a given seed — a property the test suite and the
//! paper-reproduction experiments rely on.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// A pending event: reversed ordering so `BinaryHeap` acts as a min-heap.
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: earliest time (then lowest sequence number) is "greatest".
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-priority queue of timestamped events.
///
/// Events pop in non-decreasing time order; events with equal timestamps pop
/// in the order they were scheduled.
///
/// # Example
///
/// ```
/// use dcrd_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_millis(2), 'b');
/// q.schedule(SimTime::from_millis(1), 'a');
/// q.schedule(SimTime::from_millis(2), 'c');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            popped: 0,
        }
    }

    /// Creates an empty queue with capacity for `cap` pending events.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            ..Self::new()
        }
    }

    /// Number of events the queue can hold without reallocating (at least
    /// the `with_capacity` request).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// The current simulated time: the timestamp of the most recently popped
    /// event (or [`SimTime::ZERO`] before the first pop).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events popped so far.
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Number of events still pending.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// Scheduling into the past would silently corrupt causality, so `at`
    /// is clamped to the current simulated time (debug builds assert the
    /// caller never asked for that).
    pub fn schedule(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.now,
            "cannot schedule event in the past: {at} < now {now}",
            now = self.now
        );
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Schedules `event` after `delay` relative to the current time.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Timestamp of the next pending event, if any.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Pops the next event, advancing the simulated clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now, "event queue time went backwards");
        self.now = entry.at;
        self.popped += 1;
        Some((entry.at, entry.event))
    }

    /// Drops all pending events without advancing the clock.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E: std::fmt::Debug> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .field("processed", &self.popped)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), 3);
        q.schedule(SimTime::from_millis(10), 1);
        q.schedule(SimTime::from_millis(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_timestamps_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_millis(7));
        assert_eq!(q.events_processed(), 1);
    }

    #[test]
    fn schedule_after_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), "first");
        q.pop();
        q.schedule_after(SimDuration::from_millis(5), "second");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_millis(15));
    }

    #[test]
    #[should_panic(expected = "cannot schedule event in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), ());
        q.pop();
        q.schedule(SimTime::from_millis(5), ());
    }

    #[test]
    fn with_capacity_preallocates() {
        let q: EventQueue<()> = EventQueue::with_capacity(1024);
        assert!(q.capacity() >= 1024);
        let q: EventQueue<()> = EventQueue::new();
        // A fresh queue has no obligations beyond "some capacity".
        assert!(q.is_empty());
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::with_capacity(8);
        assert!(q.is_empty());
        q.schedule(SimTime::from_millis(1), ());
        q.schedule(SimTime::from_millis(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(1)));
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Any schedule order pops sorted by (time, insertion order).
            #[test]
            fn pops_sorted_with_stable_ties(times in proptest::collection::vec(0u64..50, 1..200)) {
                let mut q = EventQueue::new();
                for (i, &t) in times.iter().enumerate() {
                    q.schedule(SimTime::from_millis(t), i);
                }
                let mut expected: Vec<(u64, usize)> =
                    times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
                expected.sort();
                let mut popped = Vec::new();
                while let Some((at, i)) = q.pop() {
                    popped.push((at.as_micros() / 1000, i));
                }
                prop_assert_eq!(popped, expected);
            }

            /// The clock never moves backwards regardless of input.
            #[test]
            fn clock_is_monotone(times in proptest::collection::vec(0u64..1000, 1..100)) {
                let mut q = EventQueue::new();
                for &t in &times {
                    q.schedule(SimTime::from_micros(t), ());
                }
                let mut last = SimTime::ZERO;
                while let Some((at, ())) = q.pop() {
                    prop_assert!(at >= last);
                    last = at;
                }
                prop_assert_eq!(q.events_processed(), times.len() as u64);
            }
        }
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(1), 1u32);
        q.schedule(SimTime::from_millis(100), 100);
        let mut seen = Vec::new();
        while let Some((t, e)) = q.pop() {
            seen.push(e);
            if e == 1 {
                // Cascade: schedule intermediate events while draining.
                q.schedule(t + SimDuration::from_millis(1), 2);
                q.schedule(t + SimDuration::from_millis(2), 3);
            }
        }
        assert_eq!(seen, vec![1, 2, 3, 100]);
    }
}
