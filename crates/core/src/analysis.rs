//! Analytic predictions from the routing tables.
//!
//! The `⟨d, r⟩` parameters DCRD computes are not just routing state — they
//! are *predictions*: `d_P` is the expected delivery delay of one full
//! downstream exploration starting at the publisher, and `r_P` its success
//! probability. This module exposes them per subscription so deployments
//! can answer "will this subscription's requirement be met?" **before**
//! sending a single packet, and so tests can pin the math to the simulator:
//!
//! * with no failures and no loss, `d_P` equals the shortest-path delay
//!   exactly (the greedy `d/r` order degenerates to shortest-path routing);
//! * the simulated delivery ratio dominates `r_P` (upstream rerouting and
//!   cross-epoch retries only add delivery chances on top of the one
//!   exploration Eq. 3 models).

use dcrd_net::estimate::LinkEstimates;
use dcrd_net::paths::{dijkstra, Metric};
use dcrd_net::{NodeId, Topology};
use dcrd_pubsub::topic::TopicId;
use dcrd_pubsub::workload::Workload;
use dcrd_sim::SimDuration;
use serde::{Deserialize, Serialize};

use crate::config::DcrdConfig;
use crate::propagation::compute_tables_with_distances;

/// The analytic outlook of one subscription.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SubscriptionPrediction {
    /// The topic.
    pub topic: TopicId,
    /// The publishing broker.
    pub publisher: NodeId,
    /// The subscribing broker.
    pub subscriber: NodeId,
    /// The subscription's delay requirement.
    pub requirement: SimDuration,
    /// Expected delivery delay of one exploration (`d_P`), if deliverable.
    pub expected_delay: Option<SimDuration>,
    /// Probability that one exploration delivers (`r_P`).
    pub expected_delivery_ratio: f64,
    /// Whether the expected delay fits the requirement.
    pub expected_on_time: bool,
}

/// Computes the analytic outlook of every subscription in `workload`.
#[must_use]
pub fn predict_workload(
    topo: &Topology,
    estimates: &LinkEstimates,
    m: u32,
    workload: &Workload,
    config: &DcrdConfig,
) -> Vec<SubscriptionPrediction> {
    let mut out = Vec::new();
    for spec in workload.topics() {
        let dist = dijkstra(topo, spec.publisher, Metric::Delay);
        for sub in &spec.subscriptions {
            let tables = compute_tables_with_distances(
                topo,
                estimates,
                m,
                spec.publisher,
                &dist,
                sub.subscriber,
                sub.deadline.as_micros() as f64,
                config,
            );
            let p = tables.params(spec.publisher);
            let expected_delay = p
                .reachable()
                .then(|| SimDuration::from_micros(p.d.round() as u64));
            out.push(SubscriptionPrediction {
                topic: spec.topic,
                publisher: spec.publisher,
                subscriber: sub.subscriber,
                requirement: sub.deadline,
                expected_delay,
                expected_delivery_ratio: p.r,
                expected_on_time: expected_delay.is_some_and(|d| d <= sub.deadline),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcrd_net::estimate::analytic_estimates;
    use dcrd_net::paths::shortest_path;
    use dcrd_net::topology::{full_mesh, random_connected, DelayRange};
    use dcrd_pubsub::workload::WorkloadConfig;
    use dcrd_sim::rng::rng_for;

    #[test]
    fn lossless_prediction_equals_shortest_path() {
        let mut rng = rng_for(1, "analysis");
        let topo = random_connected(15, 5, DelayRange::PAPER, &mut rng);
        let workload = Workload::generate(&topo, &WorkloadConfig::PAPER, &mut rng);
        let estimates = analytic_estimates(&topo, 0.0, 0.0);
        let predictions = predict_workload(&topo, &estimates, 1, &workload, &DcrdConfig::default());
        assert_eq!(predictions.len(), workload.num_subscriptions());
        for p in &predictions {
            let best =
                shortest_path(&topo, p.publisher, p.subscriber, Metric::Delay).expect("connected");
            let expected = p.expected_delay.expect("reachable");
            assert_eq!(
                expected.as_micros(),
                best.cost(),
                "lossless d_P must equal the shortest-path delay for {}→{}",
                p.publisher,
                p.subscriber
            );
            assert!((p.expected_delivery_ratio - 1.0).abs() < 1e-9);
            assert!(p.expected_on_time, "3× requirement always fits lossless");
        }
    }

    #[test]
    fn failures_lower_r_and_raise_d() {
        let mut rng = rng_for(2, "analysis");
        let topo = full_mesh(12, DelayRange::PAPER, &mut rng);
        let workload = Workload::generate(&topo, &WorkloadConfig::PAPER, &mut rng);
        let clean = predict_workload(
            &topo,
            &analytic_estimates(&topo, 0.0, 0.0),
            1,
            &workload,
            &DcrdConfig::default(),
        );
        let faulty = predict_workload(
            &topo,
            &analytic_estimates(&topo, 0.1, 1e-4),
            1,
            &workload,
            &DcrdConfig::default(),
        );
        for (c, f) in clean.iter().zip(&faulty) {
            assert!(f.expected_delivery_ratio <= c.expected_delivery_ratio + 1e-12);
            assert!(
                f.expected_delay.expect("mesh reachable")
                    >= c.expected_delay.expect("mesh reachable"),
                "failures must not shorten the expected delay"
            );
            // A 12-node mesh still delivers with near certainty.
            assert!(f.expected_delivery_ratio > 0.99);
        }
    }

    #[test]
    fn simulation_dominates_the_single_exploration_prediction() {
        use dcrd_net::failure::{FailureModel, LinkFailureModel};
        use dcrd_net::loss::LossModel;
        use dcrd_pubsub::runtime::{OverlayRuntime, RuntimeConfig};

        let mut rng = rng_for(3, "analysis");
        let topo = random_connected(15, 5, DelayRange::PAPER, &mut rng);
        let workload = Workload::generate(&topo, &WorkloadConfig::PAPER, &mut rng);
        let estimates = analytic_estimates(&topo, 0.08, 1e-4);
        let predictions = predict_workload(&topo, &estimates, 1, &workload, &DcrdConfig::default());
        let mean_r: f64 = predictions
            .iter()
            .map(|p| p.expected_delivery_ratio)
            .sum::<f64>()
            / predictions.len() as f64;

        let failure = FailureModel::links_only(LinkFailureModel::new(0.08, 99));
        let config = RuntimeConfig::paper(dcrd_sim::SimDuration::from_secs(60), 3);
        let log = OverlayRuntime::new(&topo, &workload, failure, LossModel::new(1e-4), config)
            .run(&mut crate::DcrdStrategy::new(DcrdConfig::default()));
        assert!(
            log.delivery_ratio() >= mean_r - 0.02,
            "simulated delivery {} fell below the analytic single-exploration bound {mean_r}",
            log.delivery_ratio()
        );
    }

    #[test]
    fn disconnected_subscription_is_flagged() {
        use dcrd_net::graph::TopologyBuilder;
        use dcrd_pubsub::topic::Subscription;
        use dcrd_pubsub::workload::TopicSpec;

        let mut b = TopologyBuilder::new(3);
        let n = b.nodes();
        b.link(n[0], n[1], SimDuration::from_millis(10));
        let topo = b.build(); // node 2 isolated
        let workload = Workload::from_topics(vec![TopicSpec {
            topic: TopicId::new(0),
            publisher: topo.node(0),
            interval: SimDuration::from_secs(1),
            offset: SimDuration::ZERO,
            subscriptions: vec![Subscription::new(topo.node(2), SimDuration::from_secs(1))],
            burst: None,
        }]);
        let estimates = analytic_estimates(&topo, 0.0, 0.0);
        let predictions = predict_workload(&topo, &estimates, 1, &workload, &DcrdConfig::default());
        let p = &predictions[0];
        assert_eq!(p.expected_delay, None);
        assert_eq!(p.expected_delivery_ratio, 0.0);
        assert!(!p.expected_on_time);
    }
}
