//! The `⟨d, r⟩` node parameters and the aggregation equations (Eq. 2/Eq. 3).
//!
//! For a subscriber `S`, every broker `X` carries two values:
//!
//! * `d_X` — the expected delay from the moment `X` receives a packet until
//!   it arrives at `S`, *conditional on eventual delivery*;
//! * `r_X` — the probability that `X` delivers the packet to `S` at all
//!   (through at least one of its sending-list neighbors).
//!
//! Given a neighbor `i` with parameters `⟨dᵢ, rᵢ⟩` over a link with
//! `m`-transmission statistics `⟨α_Xi, γ_Xi⟩`, the **per-candidate** values
//! are (Eq. 2):
//!
//! ```text
//! d_X^i = α_Xi + dᵢ        r_X^i = γ_Xi · rᵢ
//! ```
//!
//! and sequentially trying an ordered candidate list `1..n` yields (Eq. 3):
//!
//! ```text
//! d_X = Σᵢ (Σ_{j≤i} d_X^j) · (r_X^i · Π_{j<i}(1−r_X^j))  /  r_X
//! r_X = 1 − Πᵢ (1−r_X^i)
//! ```
//!
//! Delays are carried in **microseconds** as `f64`.

use dcrd_net::NodeId;
use serde::{Deserialize, Serialize};

/// A node's `⟨d, r⟩` parameters toward one subscriber. `d` is in µs and is
/// `f64::INFINITY` when `r == 0` (undeliverable).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DrPair {
    /// Expected delivery delay in µs, conditional on delivery.
    pub d: f64,
    /// Expected delivery ratio in `[0, 1]`.
    pub r: f64,
}

impl DrPair {
    /// The subscriber's own parameters: zero delay, certain delivery.
    pub const SUBSCRIBER: DrPair = DrPair { d: 0.0, r: 1.0 };

    /// The parameters of a node with no route: infinite delay, zero ratio.
    pub const UNREACHABLE: DrPair = DrPair {
        d: f64::INFINITY,
        r: 0.0,
    };

    /// Whether this node can deliver at all.
    #[must_use]
    pub fn reachable(&self) -> bool {
        self.r > 0.0
    }
}

/// One sending-list candidate: neighbor `i` with its Eq. 2 values
/// `⟨d_X^i, r_X^i⟩`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Candidate {
    /// The neighboring broker.
    pub neighbor: NodeId,
    /// `d_X^i = α_Xi + dᵢ` in µs.
    pub d: f64,
    /// `r_X^i = γ_Xi · rᵢ`.
    pub r: f64,
}

impl Candidate {
    /// Eq. 2: combines a link's `m`-transmission stats with the neighbor's
    /// own parameters.
    #[must_use]
    pub fn from_link(neighbor: NodeId, alpha: f64, gamma: f64, neighbor_params: DrPair) -> Self {
        Candidate {
            neighbor,
            d: alpha + neighbor_params.d,
            r: gamma * neighbor_params.r,
        }
    }

    /// The Theorem 1 sort key `d/r` (`∞` for `r = 0`).
    #[must_use]
    pub fn ratio(&self) -> f64 {
        if self.r <= 0.0 {
            f64::INFINITY
        } else {
            self.d / self.r
        }
    }
}

/// Eq. 3: the `⟨d_X, r_X⟩` of a node that tries `candidates` **in the given
/// order**. Returns [`DrPair::UNREACHABLE`] for an empty list or one whose
/// candidates all have `r = 0`.
#[must_use]
pub fn combine(candidates: &[Candidate]) -> DrPair {
    let mut numerator = 0.0; // Σᵢ (prefix delay)·P(first success at i)
    let mut prefix_delay = 0.0; // Σ_{j≤i} d_X^j
    let mut fail_all = 1.0; // Π_{j<i} (1−r_X^j)
    for c in candidates {
        if c.d.is_infinite() {
            // A dead candidate (r=0, d=∞) can never be the first success;
            // in the paper's model it also adds no finite delay term. Skip
            // to keep the numerator well-defined.
            debug_assert!(c.r <= 0.0, "finite-r candidate with infinite d");
            continue;
        }
        prefix_delay += c.d;
        numerator += prefix_delay * (c.r * fail_all);
        fail_all *= 1.0 - c.r;
    }
    let r = 1.0 - fail_all;
    if r <= 0.0 {
        DrPair::UNREACHABLE
    } else {
        DrPair {
            d: numerator / r,
            r,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cand(d: f64, r: f64) -> Candidate {
        Candidate {
            neighbor: NodeId::new(0),
            d,
            r,
        }
    }

    #[test]
    fn single_candidate_passthrough() {
        let out = combine(&[cand(100.0, 0.8)]);
        assert!((out.d - 100.0).abs() < 1e-9);
        assert!((out.r - 0.8).abs() < 1e-12);
        assert!(out.reachable());
    }

    #[test]
    fn empty_list_unreachable() {
        let out = combine(&[]);
        assert_eq!(out, DrPair::UNREACHABLE);
        assert!(!out.reachable());
    }

    #[test]
    fn two_candidates_hand_computed() {
        // d1=10,r1=0.5 ; d2=20,r2=0.5
        // r = 1−0.25 = 0.75
        // num = 10·0.5 + (10+20)·0.5·0.5 = 5 + 7.5 = 12.5 → d = 12.5/0.75
        let out = combine(&[cand(10.0, 0.5), cand(20.0, 0.5)]);
        assert!((out.r - 0.75).abs() < 1e-12);
        assert!((out.d - 12.5 / 0.75).abs() < 1e-9);
    }

    #[test]
    fn perfect_first_candidate_masks_rest() {
        let out = combine(&[cand(10.0, 1.0), cand(5.0, 1.0)]);
        assert!((out.d - 10.0).abs() < 1e-9);
        assert!((out.r - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dead_candidates_are_ignored() {
        let dead = Candidate {
            neighbor: NodeId::new(1),
            d: f64::INFINITY,
            r: 0.0,
        };
        let out = combine(&[dead, cand(10.0, 0.9)]);
        assert!((out.d - 10.0).abs() < 1e-9);
        assert!((out.r - 0.9).abs() < 1e-12);
        let all_dead = combine(&[dead]);
        assert_eq!(all_dead, DrPair::UNREACHABLE);
    }

    #[test]
    fn eq2_from_link() {
        let c = Candidate::from_link(
            NodeId::new(3),
            30_000.0,
            0.95,
            DrPair {
                d: 10_000.0,
                r: 0.9,
            },
        );
        assert_eq!(c.neighbor, NodeId::new(3));
        assert!((c.d - 40_000.0).abs() < 1e-9);
        assert!((c.r - 0.855).abs() < 1e-12);
        assert!((c.ratio() - 40_000.0 / 0.855).abs() < 1e-6);
    }

    #[test]
    fn ratio_of_dead_candidate_is_infinite() {
        assert!(cand(10.0, 0.0).ratio().is_infinite());
    }

    #[test]
    fn failed_attempts_add_delay() {
        // The Eq. 3 model charges the delay of failed attempts to later
        // successes: putting a slow unreliable candidate first must raise d.
        let fast_first = combine(&[cand(10.0, 0.9), cand(1000.0, 0.9)]);
        let slow_first = combine(&[cand(1000.0, 0.9), cand(10.0, 0.9)]);
        assert!(slow_first.d > fast_first.d);
        assert!(
            (slow_first.r - fast_first.r).abs() < 1e-12,
            "r is order-independent"
        );
    }

    proptest! {
        #[test]
        fn combine_invariants(
            ds in proptest::collection::vec(1.0f64..1e6, 1..8),
            rs in proptest::collection::vec(0.01f64..1.0, 1..8),
        ) {
            let n = ds.len().min(rs.len());
            let candidates: Vec<Candidate> =
                (0..n).map(|i| cand(ds[i], rs[i])).collect();
            let out = combine(&candidates);
            // r equals 1 − Π(1−rᵢ) regardless of order.
            let expected_r: f64 = 1.0 - candidates.iter().map(|c| 1.0 - c.r).product::<f64>();
            prop_assert!((out.r - expected_r).abs() < 1e-9);
            // d is at least the first candidate's d and at most Σ dᵢ.
            let sum: f64 = ds[..n].iter().sum();
            prop_assert!(out.d >= candidates[0].d - 1e-6);
            prop_assert!(out.d <= sum + 1e-6);
        }

        #[test]
        fn combine_matches_monte_carlo(
            seed in 0u64..50,
        ) {
            use rand::Rng;
            let mut rng = dcrd_sim::rng::rng_for(seed, "combine-mc");
            let n = rng.gen_range(1..5);
            let candidates: Vec<Candidate> = (0..n)
                .map(|_| cand(rng.gen_range(10.0..1000.0), rng.gen_range(0.2..0.95)))
                .collect();
            let out = combine(&candidates);
            let trials = 30_000;
            let mut delivered = 0u64;
            let mut total = 0.0;
            for _ in 0..trials {
                let mut elapsed = 0.0;
                for c in &candidates {
                    elapsed += c.d;
                    if rng.gen::<f64>() < c.r {
                        delivered += 1;
                        total += elapsed;
                        break;
                    }
                }
            }
            let emp_r = delivered as f64 / trials as f64;
            let emp_d = total / delivered as f64;
            prop_assert!((emp_r - out.r).abs() < 0.02, "r {} vs {}", out.r, emp_r);
            prop_assert!((emp_d - out.d).abs() / out.d < 0.05, "d {} vs {}", out.d, emp_d);
        }
    }
}
