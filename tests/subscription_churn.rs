//! Subscriber churn (extension): subscriptions that join and leave during
//! the run only receive — and are only accounted for — messages published
//! inside their activity window.

use dcrd::core::{DcrdConfig, DcrdStrategy};
use dcrd::experiments::runner::{run_scenario, StrategyKind};
use dcrd::experiments::scenario::ScenarioBuilder;
use dcrd::net::failure::{FailureModel, LinkFailureModel};
use dcrd::net::loss::LossModel;
use dcrd::net::topology::line;
use dcrd::pubsub::runtime::{OverlayRuntime, RuntimeConfig};
use dcrd::pubsub::topic::{Subscription, TopicId};
use dcrd::pubsub::workload::{ChurnConfig, TopicSpec, Workload};
use dcrd::sim::{SimDuration, SimTime};

#[test]
fn windowed_subscriber_receives_only_in_window_messages() {
    let topo = line(2, SimDuration::from_millis(10));
    // Publisher 0 publishes at t = 0, 1, ..., 29 s; subscriber active
    // [10 s, 20 s).
    let wl = Workload::from_topics(vec![TopicSpec {
        topic: TopicId::new(0),
        publisher: topo.node(0),
        interval: SimDuration::from_secs(1),
        offset: SimDuration::ZERO,
        subscriptions: vec![Subscription::windowed(
            topo.node(1),
            SimDuration::from_millis(50),
            SimTime::from_secs(10),
            SimTime::from_secs(20),
        )],
        burst: None,
    }]);
    let failure = FailureModel::links_only(LinkFailureModel::new(0.0, 1));
    let config = RuntimeConfig::paper(SimDuration::from_secs(29), 1);
    let log = OverlayRuntime::new(&topo, &wl, failure, LossModel::new(0.0), config)
        .run(&mut DcrdStrategy::new(DcrdConfig::default()));

    // 30 messages published, but only those at t = 10..19 s count.
    assert_eq!(log.messages_published, 30);
    assert_eq!(log.num_expectations(), 10);
    assert!((log.delivery_ratio() - 1.0).abs() < 1e-12);
    for ((_, sub), exp) in log.expectations() {
        assert_eq!(sub, topo.node(1));
        assert!(exp.published >= SimTime::from_secs(10));
        assert!(exp.published < SimTime::from_secs(20));
    }
    // Out-of-window publishes produced zero traffic (no active dests).
    assert_eq!(log.data_sends, 10);
}

#[test]
fn churned_workload_delivers_like_the_static_one_per_message() {
    let base = ScenarioBuilder::new()
        .nodes(20)
        .degree(5)
        .failure_probability(0.04)
        .duration_secs(120)
        .repetitions(2)
        .seed(77);
    let static_scenario = base.clone().build();
    let churned = base
        .churn(ChurnConfig {
            join_within: SimDuration::from_secs(60),
            lifetime: (SimDuration::from_secs(30), SimDuration::from_secs(90)),
        })
        .build();
    let s = run_scenario(&static_scenario, StrategyKind::Dcrd);
    let c = run_scenario(&churned, StrategyKind::Dcrd);
    // Churn shrinks the accounted pairs but must not hurt per-message
    // delivery quality: tables exist for every potential subscription.
    assert!(c.pairs() < s.pairs());
    assert!(c.pairs() > 0);
    assert!(
        (c.qos_delivery_ratio() - s.qos_delivery_ratio()).abs() < 0.02,
        "churned QoS {} vs static {}",
        c.qos_delivery_ratio(),
        s.qos_delivery_ratio()
    );
    assert!(c.delivery_ratio() > 0.995);
}
